// Package server is the HTTP serving layer of the auto-tuning framework:
// a concurrent SpMV daemon in front of a shared tuning-plan cache.
//
// The paper's tuning pipeline (feature extraction → stage-1 U → binning →
// stage-2 kernels) is paid once per matrix structure and amortized over
// every subsequent multiplication. The server makes that split explicit:
//
//	POST /v1/matrices   upload a Matrix Market body → matrix ID
//	POST /v1/spmv       one vector or a batch against an uploaded matrix
//	GET  /v1/plans/{id} the cached/computed TuningPlan for a matrix
//	GET  /healthz       liveness
//	GET  /metrics       text exposition of cache and request counters
//
// Concurrent requests for the same matrix tune once (the plan cache's
// singleflight), execution happens through the guarded fallback chain so a
// kernel fault degrades instead of failing the request, a bounded worker
// pool applies queue backpressure (429 on overflow), and every request
// carries a deadline.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spmvtune/internal/binning"
	"spmvtune/internal/core"
	"spmvtune/internal/errdefs"
	"spmvtune/internal/hsa"
	"spmvtune/internal/kernels"
	"spmvtune/internal/mmio"
	"spmvtune/internal/plan"
	"spmvtune/internal/plancache"
	"spmvtune/internal/retrain"
	"spmvtune/internal/sparse"
	"spmvtune/internal/trace"
)

// matrixIDLen is the fingerprint prefix used as the public matrix ID:
// 64 bits of the structural hash, short enough for URLs, long enough that
// a collision in one server's working set is vanishingly unlikely.
const matrixIDLen = 16

// Config configures a Server. The zero values of every field except
// Framework select production defaults.
type Config struct {
	// Framework executes the tuned SpMV; required.
	Framework *core.Framework
	// Guard tunes the guarded executor (retries, backoff, tolerance).
	Guard core.GuardOptions
	// Limits bounds uploaded Matrix Market headers (see mmio.Limits);
	// the zero value selects mmio.DefaultLimits.
	Limits mmio.Limits
	// MaxBodyBytes bounds any request body; <= 0 selects 64 MiB.
	MaxBodyBytes int64
	// Workers bounds concurrently executing SpMV requests; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// QueueDepth is how many SpMV requests may wait for a worker beyond
	// the executing ones; the next request is rejected with 429.
	// <= 0 selects 64.
	QueueDepth int
	// ExecWorkers bounds the per-request bin pool: each guarded execution
	// may serve up to this many independent bins concurrently
	// (core.GuardOptions.Workers). <= 0 selects 1 — sequential bins, all
	// parallelism spent across requests. Values > 1 are clamped so the
	// request pool times the bin pool never exceeds GOMAXPROCS; the
	// request pool owns the host budget.
	ExecWorkers int
	// DefaultTimeout is the per-request execution deadline when the
	// request does not carry its own; <= 0 selects 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied deadlines; <= 0 selects 5m.
	MaxTimeout time.Duration
	// MaxBatch bounds the vectors of one SpMV request, and — when the
	// coalescer is on — the width of one fused launch; <= 0 selects 64.
	MaxBatch int
	// BatchWindow enables the cross-request batch coalescer: executions
	// that share a matrix fingerprint within this window are fused into
	// one guarded multi-vector launch (results byte-identical to the
	// sequential path, per-request error isolation) and demuxed back.
	// Reaching MaxBatch pending vectors flushes the batch early. 0
	// disables coalescing — every execution takes the single-vector path
	// exactly as before.
	BatchWindow time.Duration
	// MaxMatrices bounds resident uploaded matrices; the oldest upload is
	// dropped beyond it. <= 0 selects 1024.
	MaxMatrices int
	// Cache configures the shared tuning-plan cache.
	Cache plancache.Options
	// Trace receives one JSONL span per pipeline phase of every traced
	// request (see internal/trace). Nil disables emission. Requests are
	// tagged with their own trace IDs, so one Writer serves the daemon.
	Trace *trace.Writer
	// DisableCounters turns off device performance-counter collection on
	// guarded executions. Counters are on by default in the server — they
	// feed /metrics and GET /v1/profiles — and cost one nil check per
	// collection site when disabled.
	DisableCounters bool
	// Retrain, when non-nil, receives an Observation for every clean SpMV
	// execution — the online learning loop's evidence feed. New registers
	// the server's AdoptModel as the service's promotion callback, so a
	// gated-in model hot-swaps into the framework AND bumps the plan
	// cache's wanted model version in one step.
	Retrain *retrain.Service
	// MaxSessions bounds resident solver sessions (see POST /v1/solve).
	// At capacity the oldest idle session is evicted to admit a new one;
	// if every session is busy the create is rejected with 429. <= 0
	// selects 64.
	MaxSessions int
	// SessionTTL evicts solver sessions idle longer than this (swept
	// lazily on session operations). <= 0 selects 10m.
	SessionTTL time.Duration
	// Breaker tunes the per-matrix tuning circuit breaker (zero value
	// selects the defaults; set Disabled to turn it off).
	Breaker BreakerConfig
	// Clock overrides the time source the breaker uses; nil selects
	// time.Now. Tests inject a fake clock to step through cooldowns.
	Clock func() time.Time

	// The three hooks below are the service-layer chaos injection points
	// (see internal/chaos). All are nil in production and cost one nil
	// check each when unset.
	//
	// TuneHook runs at the start of every actual plan computation (inside
	// the singleflight leader). Returning an error fails the tune; the
	// hook may sleep to inject tuning latency, or panic to exercise the
	// compute panic containment.
	TuneHook func(ctx context.Context) error
	// ExecHook runs on the request goroutine before every guarded SpMV
	// execution; it may panic to exercise the handler panic containment.
	ExecHook func()
	// FaultHook supplies a per-request device fault plan for guarded
	// executions, composing service chaos with the hsa simulator faults.
	FaultHook func() *hsa.FaultPlan
}

func (c Config) withDefaults() Config {
	zero := mmio.Limits{}
	if c.Limits == zero {
		c.Limits = mmio.DefaultLimits()
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.ExecWorkers <= 0 {
		c.ExecWorkers = 1
	}
	// Worker-pool × request-pool must not oversubscribe the host: clamp the
	// per-request bin pool so the product stays within GOMAXPROCS.
	if c.ExecWorkers > 1 {
		if limit := runtime.GOMAXPROCS(0); c.Workers*c.ExecWorkers > limit {
			c.ExecWorkers = limit / c.Workers
			if c.ExecWorkers < 1 {
				c.ExecWorkers = 1
			}
		}
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxMatrices <= 0 {
		c.MaxMatrices = 1024
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 10 * time.Minute
	}
	c.Breaker = c.Breaker.withDefaults()
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// matrixEntry is one uploaded matrix with its precomputed cache key.
type matrixEntry struct {
	ID          string
	Fingerprint string
	A           *sparse.CSR
}

// Server implements http.Handler for the spmvd API.
type Server struct {
	cfg   Config
	cache *plancache.Cache
	mux   *http.ServeMux

	mu       sync.RWMutex
	matrices map[string]*matrixEntry
	order    []string // upload order, for capacity eviction
	profiles map[string]*profileRecord

	queue chan struct{} // waiting + executing SpMV requests
	sem   chan struct{} // executing SpMV requests

	bmu      sync.Mutex
	breakers map[string]*breaker // per-matrix tuning circuit breakers

	smu      sync.Mutex
	sessions map[string]*session // resident solver sessions (see session.go)
	sessSeq  atomic.Int64

	co *coalescer // cross-request batch coalescer; nil when BatchWindow is 0

	draining atomic.Bool // set by Drain; /readyz reports 503

	traceSeq atomic.Int64 // generated per-request trace IDs

	m metrics
}

// profileRecord is the evidence of the most recent guarded execution
// against one matrix: its per-bin profiles and the trace ID that tags the
// run's spans.
type profileRecord struct {
	TraceID  string
	Degraded bool
	Profiles []plan.ExecProfile
}

// New builds a Server around a framework. The framework's model may be nil
// — the predict path then degrades to the serial fallback plan, which is
// the guarded layer's contract — but the framework itself is required.
func New(cfg Config) (*Server, error) {
	if cfg.Framework == nil {
		return nil, fmt.Errorf("server: Config.Framework is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    plancache.New(cfg.Cache),
		matrices: make(map[string]*matrixEntry),
		profiles: make(map[string]*profileRecord),
		breakers: make(map[string]*breaker),
		sessions: make(map[string]*session),
		queue:    make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		sem:      make(chan struct{}, cfg.Workers),
	}
	if cfg.BatchWindow > 0 {
		s.co = newCoalescer(s, cfg.BatchWindow)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/matrices", s.instrument(epMatrices, s.handleUpload))
	mux.HandleFunc("POST /v1/spmv", s.instrument(epSpMV, s.handleSpMV))
	mux.HandleFunc("POST /v1/solve", s.instrument(epSolve, s.handleSolve))
	mux.HandleFunc("POST /v1/solve/{id}/iterate", s.instrument(epIterate, s.handleIterate))
	mux.HandleFunc("GET /v1/solve/{id}", s.instrument(epSession, s.handleSession))
	mux.HandleFunc("DELETE /v1/solve/{id}", s.instrument(epSession, s.handleRelease))
	mux.HandleFunc("GET /v1/plans/{id}", s.instrument(epPlans, s.handlePlan))
	mux.HandleFunc("GET /v1/profiles/{id}", s.instrument(epProfiles, s.handleProfiles))
	mux.HandleFunc("GET /healthz", s.instrument(epHealthz, s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.instrument(epReadyz, s.handleReadyz))
	mux.HandleFunc("GET /metrics", s.instrument(epMetrics, s.handleMetrics))
	s.mux = mux
	// Anchor the cache's wanted model version to the model serving now, so
	// plans persisted by an older model re-tune instead of being served
	// stale; register the promotion hook that keeps the two in lockstep.
	s.cache.SetModelVersion(core.ModelVersion(cfg.Framework.Model()))
	if cfg.Retrain != nil {
		cfg.Retrain.SetPromote(s.AdoptModel)
	}
	return s, nil
}

// AdoptModel installs a new kernel-selection model: hot-swap it into the
// live framework (requests pick it up on their next atomic load — an
// in-flight request keeps the snapshot it started with, never a torn mix)
// and bump the plan cache's wanted model version so plans tuned by the
// previous model are evicted and re-tuned on next use. The retrain
// service calls this on every gated-in promotion.
func (s *Server) AdoptModel(m *core.Model, version string) {
	s.cfg.Framework.SwapModel(m)
	s.cache.SetModelVersion(version)
}

// Drain prepares the server for shutdown: /readyz starts reporting 503 so
// load balancers stop routing here, new solver-session creates are
// rejected and every idle session is evicted (a busy one finishes its
// in-flight iterate — its client sees the eviction on the next request),
// and every resident tuning plan is flushed to the persistence dir —
// including entries whose earlier saves failed — so a rolling restart
// never loses tuned plans. It returns the number of plans persisted.
func (s *Server) Drain() (int, error) {
	s.draining.Store(true)
	s.evictIdleSessions()
	return s.cache.Flush()
}

// RecoverCache sweeps the plan-cache persistence dir (see
// plancache.Cache.Recover): abandoned temp files from an interrupted save
// are removed and corrupt entries are quarantined, so everything left is
// loadable. spmvd runs it once at startup.
func (s *Server) RecoverCache() (plancache.RecoverStats, error) {
	return s.cache.Recover()
}

// ServeHTTP dispatches to the API mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// CacheStats exposes the plan-cache counters (also on /metrics).
func (s *Server) CacheStats() plancache.Stats { return s.cache.Stats() }

// MatrixCount returns the number of resident uploaded matrices.
func (s *Server) MatrixCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.matrices)
}

// statusRecorder captures the response status for error accounting and
// whether anything was written yet — the panic recovery boundary may only
// write its classed 500 while the response is still untouched.
type statusRecorder struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(p)
}

// Flush forwards streaming flushes (the JSONL solve stream) to the
// underlying writer when it supports them.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with request/latency/error accounting and the
// process's last panic containment boundary: a panicking handler or
// worker — chaos-injected or real — becomes one classed 500 response
// instead of a dead daemon. net/http would also stop the panic from
// killing the process, but it kills the connection without a response;
// this boundary keeps the "every request gets a well-formed classed
// answer" invariant.
func (s *Server) instrument(ep int, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.m.requests[ep].Add(1)
		s.m.inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		func() {
			defer func() {
				if p := recover(); p != nil {
					s.m.panics.Add(1)
					err := errdefs.Panicf("server: %s handler panicked: %v", endpointNames[ep], p)
					if !rec.wrote {
						s.writeError(rec, err)
					} else {
						// The body is already partially written; the most we
						// can do is account the request as failed.
						rec.status = http.StatusInternalServerError
					}
				}
			}()
			h(rec, r)
		}()
		s.m.inflight.Add(-1)
		s.m.latencyNs[ep].Add(time.Since(start).Nanoseconds())
		if rec.status >= 400 {
			s.m.errors[ep].Add(1)
		}
	}
}

// errorClass maps an error to its wire class and HTTP status. The classes
// mirror the errdefs taxonomy so clients can branch without parsing
// detail strings. Every errdefs class must map to a deliberate status
// here — the table test in errclass_test.go enforces it against
// errdefs.Classes().
func errorClass(err error) (string, int) {
	switch {
	case errors.Is(err, errdefs.ErrInvalidMatrix):
		return "invalid", http.StatusBadRequest
	case errors.Is(err, errdefs.ErrCanceled):
		return "canceled", http.StatusGatewayTimeout
	case errors.Is(err, errdefs.ErrBudgetExceeded):
		return "budget_exceeded", http.StatusInternalServerError
	case errors.Is(err, errdefs.ErrKernelFault):
		return "kernel_fault", http.StatusInternalServerError
	case errors.Is(err, errdefs.ErrUnavailable):
		return "unavailable", http.StatusServiceUnavailable
	case errors.Is(err, errdefs.ErrPanic):
		return "panic", http.StatusInternalServerError
	}
	return "internal", http.StatusInternalServerError
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	class, status := errorClass(err)
	if class == "canceled" {
		s.m.canceled.Add(1)
	}
	writeJSON(w, status, map[string]string{"error": class, "detail": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// acquire claims a worker-pool slot. ok=false with a nil error means the
// queue is full (HTTP 429); a non-nil error means the context expired
// while waiting for a worker.
func (s *Server) acquire(ctx context.Context) (release func(), ok bool, err error) {
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, false, nil
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem; <-s.queue }, true, nil
	case <-ctx.Done():
		<-s.queue
		return nil, false, errdefs.Canceled(ctx.Err())
	}
}

// requestCtx derives the execution context: the client disconnect channel
// plus the request or default deadline, clamped to the configured maximum.
func (s *Server) requestCtx(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// planFor fetches the matrix's tuning plan through the degradation
// ladder: the cached plan if resident (even with an open breaker — a
// known-good plan always beats the degraded one), else a tune through the
// shared cache's singleflight, else — when the matrix's circuit breaker
// is open — the always-available degraded serial plan instead of an
// error. The degraded return reports the bottom rung was served; such
// responses carry degraded:true and count in spmvd_degraded_total.
//
// Tuning outcomes are recorded on the breaker inside the compute callback
// — exactly once per actual tuning pass, however many singleflight
// followers share its result — and a panicking tune is contained right
// there so it is both classed and counted.
func (s *Server) planFor(ctx context.Context, e *matrixEntry, traceID string) (p *plan.TuningPlan, cacheHit, degraded bool, err error) {
	if p, ok := s.cache.Get(e.Fingerprint); ok {
		return p, true, false, nil
	}
	br := s.breakerFor(e.ID)
	if br != nil {
		proceed, probe := br.allow()
		if probe {
			s.m.breakerProbes.Add(1)
		}
		if !proceed {
			s.m.degradedServed.Add(1)
			return s.degradedPlan(e), false, true, nil
		}
	}
	p, cacheHit, err = s.cache.GetOrCompute(ctx, e.Fingerprint, func(ctx context.Context) (tp *plan.TuningPlan, terr error) {
		defer func() {
			if rec := recover(); rec != nil {
				tp, terr = nil, errdefs.Panicf("server: tuning panicked: %v", rec)
			}
			s.recordTuneOutcome(br, terr)
		}()
		if hook := s.cfg.TuneHook; hook != nil {
			if herr := hook(ctx); herr != nil {
				return nil, herr
			}
		}
		return s.cfg.Framework.PlanTraced(ctx, e.A, s.cfg.Trace, traceID)
	})
	if err != nil && br != nil && br.isOpen() {
		// The failure tripped (or joined an already-open) breaker: serve
		// the degraded plan instead of propagating a 5xx.
		s.m.degradedServed.Add(1)
		return s.degradedPlan(e), false, true, nil
	}
	return p, cacheHit, false, err
}

// recordTuneOutcome folds one actual tuning pass's result into the
// matrix's breaker.
func (s *Server) recordTuneOutcome(br *breaker, err error) {
	if br == nil {
		return
	}
	if err == nil {
		br.onSuccess()
		return
	}
	if !tuneFailure(err) {
		return
	}
	if br.onFailure() {
		s.m.breakerTrips.Add(1)
	}
}

// degradedPlan is the bottom rung of the degradation ladder: the
// single-bin Kernel-Serial plan, which needs no model, no search and no
// tuning — it is constructible from the matrix alone, and its guarded
// execution can still fall through to the CPU reference. Fallback is set
// so the plan is recognizable as degraded wherever it surfaces.
func (s *Server) degradedPlan(e *matrixEntry) *plan.TuningPlan {
	b := binning.Single(e.A)
	name := ""
	if info, ok := kernels.ByID(0); ok {
		name = info.Name
	}
	p := &plan.TuningPlan{
		Fingerprint: e.Fingerprint,
		Rows:        e.A.Rows,
		Cols:        e.A.Cols,
		NNZ:         e.A.NNZ(),
		Scheme:      "single",
		Fallback:    true,
	}
	for _, binID := range b.NonEmpty() {
		p.Bins = append(p.Bins, plan.BinAssignment{
			Bin:        binID,
			Rows:       b.NumRows(binID),
			Groups:     len(b.Bins[binID]),
			Kernel:     0,
			KernelName: name,
		})
	}
	return p
}

// guardOpts derives the per-request guarded-execution options: the
// configured guard settings plus counter collection (unless disabled) and
// the request's trace binding.
func (s *Server) guardOpts(traceID string) core.GuardOptions {
	opt := s.cfg.Guard
	opt.Counters = !s.cfg.DisableCounters
	opt.Trace = s.cfg.Trace
	opt.TraceID = traceID
	opt.Workers = s.cfg.ExecWorkers
	if s.cfg.FaultHook != nil {
		if fp := s.cfg.FaultHook(); fp != nil {
			opt.Faults = fp
		}
	}
	return opt
}

// requestTraceID resolves the trace ID for one request: the client's own
// ID when given, a generated one when tracing is on, empty otherwise.
func (s *Server) requestTraceID(supplied, matrixID string) string {
	if supplied != "" || s.cfg.Trace == nil {
		return supplied
	}
	return fmt.Sprintf("%s-%d", matrixID, s.traceSeq.Add(1))
}

// handleUpload ingests a Matrix Market body. The parser is the hardened
// limit-checked reader — a hostile header cannot OOM the daemon — and the
// matrix ID is derived from the structural fingerprint, so re-uploading
// the same structure is idempotent.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	a, err := mmio.ReadWithLimits(body, s.cfg.Limits)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{
				"error": "invalid", "detail": fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit)})
			return
		}
		s.writeError(w, err)
		return
	}
	fp := plan.Fingerprint(a)
	id := fp[:matrixIDLen]

	s.mu.Lock()
	if _, exists := s.matrices[id]; !exists {
		s.matrices[id] = &matrixEntry{ID: id, Fingerprint: fp, A: a}
		s.order = append(s.order, id)
		for len(s.order) > s.cfg.MaxMatrices {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.matrices, oldest)
			delete(s.profiles, oldest)
			s.dropBreaker(oldest)
		}
	}
	s.mu.Unlock()

	writeJSON(w, http.StatusCreated, map[string]any{
		"id":          id,
		"fingerprint": fp,
		"rows":        a.Rows,
		"cols":        a.Cols,
		"nnz":         a.NNZ(),
	})
}

func (s *Server) matrix(id string) (*matrixEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.matrices[id]
	return e, ok
}

// spmvResponse is the body of a successful POST /v1/spmv.
type spmvResponse struct {
	Matrix   string `json:"matrix"`
	Plan     string `json:"plan"` // plan fingerprint
	U        int    `json:"u"`
	CacheHit bool   `json:"cacheHit"`
	// Degraded reports the run deviated from the clean tuned path —
	// either the breaker served the degraded plan instead of tuning
	// (DegradedReason "breaker_open") or the guarded executor needed its
	// fallback chain.
	Degraded       bool        `json:"degraded"`
	DegradedReason string      `json:"degradedReason,omitempty"`
	Fallbacks      int         `json:"fallbacks"`
	TraceID        string      `json:"traceId,omitempty"`
	Result         []float64   `json:"result,omitempty"`
	Results        [][]float64 `json:"results,omitempty"`
	ElapsedMs      float64     `json:"elapsedMs"`
}

// handleSpMV executes one or a batch of tuned multiplications. The hot
// path is: resolve matrix → claim a worker (or 429) → plan via the shared
// cache (singleflight) → guarded execution per vector.
func (s *Server) handleSpMV(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, errdefs.Invalidf("server: read body: %v", err))
		return
	}
	req, err := decodeSpMVRequest(body, s.cfg.MaxBatch)
	if err != nil {
		s.writeError(w, err)
		return
	}
	e, ok := s.matrix(req.Matrix)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "not_found", "detail": "unknown matrix id " + req.Matrix})
		return
	}
	vecs := req.Batch()
	for i, vec := range vecs {
		if len(vec) != e.A.Cols {
			s.writeError(w, errdefs.Invalidf("server: vector %d has length %d, matrix has %d columns", i, len(vec), e.A.Cols))
			return
		}
	}

	ctx, cancel := s.requestCtx(r, req.TimeoutMs)
	defer cancel()

	release, ok, err := s.acquire(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if !ok {
		s.m.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": "overloaded", "detail": "worker queue full"})
		return
	}
	released := false
	releaseOnce := func() {
		if !released {
			released = true
			release()
		}
	}
	defer releaseOnce()

	start := time.Now()
	traceID := s.requestTraceID(req.TraceID, e.ID)
	p, cacheHit, planDegraded, err := s.planFor(ctx, e, traceID)
	if err != nil {
		s.writeError(w, err)
		return
	}

	resp := spmvResponse{Matrix: e.ID, Plan: p.Fingerprint, U: p.U, CacheHit: cacheHit, TraceID: traceID}
	if planDegraded {
		resp.Degraded = true
		resp.DegradedReason = "breaker_open"
	}
	if s.cfg.ExecHook != nil {
		s.cfg.ExecHook()
	}
	opt := s.guardOpts(traceID)
	if s.co != nil {
		// Coalesced path: enqueue every vector before waiting on any, so a
		// multi-vector request fuses with itself as well as with concurrent
		// same-fingerprint traffic. Vector/degradation metrics and retrain
		// evidence are recorded once per fused launch, by the flush.
		items := make([]*batchItem, len(vecs))
		for i, vec := range vecs {
			items[i] = s.co.enqueue(e, p, opt, traceID, vec)
		}
		// A parked waiter is not an execution: the fused launch runs on the
		// flush goroutine outside the worker pool, so holding the slot here
		// would starve the very requests this batch is waiting to fuse with
		// (at -workers 1 no batch could ever exceed B=1). The slot bounded
		// admission and tuning above; from here on this goroutine only waits.
		releaseOnce()
		for _, it := range items {
			u := make([]float64, e.A.Rows)
			degraded, fallbacks, err := s.co.wait(ctx, it, u)
			if err != nil {
				s.writeError(w, err)
				return
			}
			if degraded {
				resp.Degraded = true
			}
			resp.Fallbacks += fallbacks
			resp.Results = append(resp.Results, u)
		}
	} else {
		var lastRep *core.ExecReport
		for _, vec := range vecs {
			u := make([]float64, e.A.Rows)
			rep, err := s.cfg.Framework.ExecutePlanOpts(ctx, p, e.A, vec, u, opt)
			if err != nil {
				s.writeError(w, err)
				return
			}
			if rep.Degraded() {
				resp.Degraded = true
				s.m.degraded.Add(1)
			}
			resp.Fallbacks += rep.Fallbacks
			resp.Results = append(resp.Results, u)
			s.m.vectors.Add(1)
			s.m.observeReport(rep)
			lastRep = rep
		}
		if lastRep != nil {
			// Accumulate evidence across runs under the same retention cap as
			// TuningPlan.Profiles: newest wins, bounded memory.
			s.recordEvidence(e, p, traceID, lastRep, resp.Degraded, 1)
		}
	}
	if len(req.Vector) > 0 {
		resp.Result = resp.Results[0]
		resp.Results = nil
	}
	resp.ElapsedMs = float64(time.Since(start).Nanoseconds()) / 1e6
	writeJSON(w, http.StatusOK, resp)
}

// handlePlan returns the tuning plan for an uploaded matrix, computing and
// caching it if no request has needed it yet.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.matrix(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "not_found", "detail": "unknown matrix id " + id})
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	p, _, _, err := s.planFor(ctx, e, "")
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

// profilesResponse is the body of GET /v1/profiles/{id}: the matrix's
// tuning plan with the per-bin execution profiles of its most recent
// guarded run attached (TuningPlan.Profiles), plus the trace ID tagging
// that run's spans.
type profilesResponse struct {
	Matrix   string           `json:"matrix"`
	TraceID  string           `json:"traceId,omitempty"`
	Degraded bool             `json:"degraded"`
	Plan     *plan.TuningPlan `json:"plan"`
}

// handleProfiles returns the execution evidence for an uploaded matrix:
// 404 until at least one SpMV has run against it (profiles are measured,
// never synthesized).
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.matrix(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "not_found", "detail": "unknown matrix id " + id})
		return
	}
	s.mu.RLock()
	rec := s.profiles[id]
	s.mu.RUnlock()
	if rec == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "not_found", "detail": "no execution profiled yet for matrix " + id + " — POST /v1/spmv first"})
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	p, _, _, err := s.planFor(ctx, e, "")
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Attach the evidence to a copy: the cached plan stays immutable.
	withProfiles := *p
	withProfiles.Profiles = rec.Profiles
	writeJSON(w, http.StatusOK, profilesResponse{
		Matrix:   id,
		TraceID:  rec.TraceID,
		Degraded: rec.Degraded,
		Plan:     &withProfiles,
	})
}

// degradedReasons collects every condition under which the daemon is
// alive but not fully healthy. Order is stable for tests.
func (s *Server) degradedReasons() []string {
	var reasons []string
	if err := s.cache.ProbeDisk(); err != nil {
		reasons = append(reasons, "cache-dir-unwritable: "+err.Error())
	}
	if open, _ := s.breakerCounts(); open > 0 {
		reasons = append(reasons, fmt.Sprintf("breaker-open: %d matrices degraded", open))
	}
	if len(s.queue) >= cap(s.queue) {
		reasons = append(reasons, "queue-saturated")
	}
	if s.draining.Load() {
		reasons = append(reasons, "draining")
	}
	return reasons
}

// handleHealthz is liveness plus degradation visibility: always 200 while
// the process can answer (a degraded daemon must not be restarted into a
// crash loop by its orchestrator), with status "ok" or "degraded" and the
// reasons. Routing decisions belong to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	reasons := s.degradedReasons()
	if len(reasons) == 0 {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "degraded", "reasons": reasons})
}

// handleReadyz is the load-balancer signal: 503 while the daemon should
// not receive new traffic — the worker queue is saturated or a drain has
// begun. Breaker-open matrices and an unwritable cache dir do NOT fail
// readiness: the daemon still serves every request (degraded), which
// beats removing it from rotation.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	var reasons []string
	if len(s.queue) >= cap(s.queue) {
		reasons = append(reasons, "queue-saturated")
	}
	if s.draining.Load() {
		reasons = append(reasons, "draining")
	}
	if len(reasons) == 0 {
		writeJSON(w, http.StatusOK, map[string]any{"ready": true})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reasons": reasons})
}

// handleMetrics renders the cache and request counters as a plain-text
// exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	st := s.cache.Stats()
	fmt.Fprintf(w, "spmvd_plan_cache_hits %d\n", st.Hits)
	fmt.Fprintf(w, "spmvd_plan_cache_misses %d\n", st.Misses)
	fmt.Fprintf(w, "spmvd_plan_cache_disk_hits %d\n", st.DiskHits)
	fmt.Fprintf(w, "spmvd_plan_cache_evictions %d\n", st.Evictions)
	fmt.Fprintf(w, "spmvd_plan_cache_expirations %d\n", st.Expirations)
	fmt.Fprintf(w, "spmvd_plan_cache_entries %d\n", st.Entries)
	fmt.Fprintf(w, "spmvd_plan_cache_persist_errors %d\n", st.PersistErrors)
	fmt.Fprintf(w, "spmvd_plan_cache_quarantined %d\n", st.Quarantined)
	fmt.Fprintf(w, "spmvd_plan_cache_stale_evictions %d\n", st.StaleEvictions)
	// The tuning sum/count pair exposes the mean wall-clock cost a cache
	// miss pays computing its plan — the latency the cache amortizes away.
	fmt.Fprintf(w, "spmvd_tune_seconds_sum %.6f\n", float64(st.TuneNs)/1e9)
	fmt.Fprintf(w, "spmvd_tune_seconds_count %d\n", st.Tunes)
	// The search cost cache sits below the plan cache: it amortizes the
	// per-bin kernel simulations inside one exhaustive search, while the
	// plan cache above amortizes whole tuning plans across requests.
	ss := core.SearchCacheStats()
	fmt.Fprintf(w, "spmvd_search_cache_hits %d\n", ss.Hits)
	fmt.Fprintf(w, "spmvd_search_cache_misses %d\n", ss.Misses)
	fmt.Fprintf(w, "spmvd_search_cache_pruned %d\n", ss.Pruned)
	// Parameter-space families: candidate cells enumerated across all
	// searches (whatever the configured kernel space) and best-U bins won by
	// a synthesized — non-pool — kernel.
	sps := core.SearchSpaceStats()
	fmt.Fprintf(w, "spmvd_search_space_cells %d\n", sps.SpaceCells)
	fmt.Fprintf(w, "spmvd_search_synth_wins_total %d\n", sps.SynthWins)
	fmt.Fprintf(w, "spmvd_matrices_stored %d\n", s.MatrixCount())
	// Solver-session gauge: how many resident sessions hold a pinned plan
	// and scratch right now. The iteration/eviction counters live in
	// writeTo with the other totals.
	fmt.Fprintf(w, "spmvd_sessions_active %d\n", s.SessionCount())
	// Breaker state gauges: how many matrices are currently tripped (open)
	// or probing (half-open), alongside the trip/probe counters writeTo
	// emits.
	open, halfOpen := s.breakerCounts()
	fmt.Fprintf(w, "spmvd_breaker_open %d\n", open)
	fmt.Fprintf(w, "spmvd_breaker_half_open %d\n", halfOpen)
	// Online-learning families. Always emitted — zeros when the retrain
	// loop is disabled — so scrapers and the golden-name test see a stable
	// exposition either way. spmvd_model_version is the promotion
	// generation (0 = still serving the boot model); spmvd_model_regret is
	// the served model's held-out geo-mean regret as of the last gate
	// evaluation.
	var rst retrain.Stats
	if s.cfg.Retrain != nil {
		rst = s.cfg.Retrain.Stats()
	}
	fmt.Fprintf(w, "spmvd_model_version %d\n", rst.Generation)
	fmt.Fprintf(w, "spmvd_model_regret %.6f\n", rst.ModelRegret)
	fmt.Fprintf(w, "spmvd_retrain_rows_total %d\n", rst.Rows)
	fmt.Fprintf(w, "spmvd_retrain_runs_total %d\n", rst.Runs)
	fmt.Fprintf(w, "spmvd_retrain_promotions_total %d\n", rst.Promotions)
	fmt.Fprintf(w, "spmvd_retrain_rejected_total %d\n", rst.Rejected)
	s.m.writeTo(w)
}
