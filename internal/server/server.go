// Package server is the HTTP serving layer of the auto-tuning framework:
// a concurrent SpMV daemon in front of a shared tuning-plan cache.
//
// The paper's tuning pipeline (feature extraction → stage-1 U → binning →
// stage-2 kernels) is paid once per matrix structure and amortized over
// every subsequent multiplication. The server makes that split explicit:
//
//	POST /v1/matrices   upload a Matrix Market body → matrix ID
//	POST /v1/spmv       one vector or a batch against an uploaded matrix
//	GET  /v1/plans/{id} the cached/computed TuningPlan for a matrix
//	GET  /healthz       liveness
//	GET  /metrics       text exposition of cache and request counters
//
// Concurrent requests for the same matrix tune once (the plan cache's
// singleflight), execution happens through the guarded fallback chain so a
// kernel fault degrades instead of failing the request, a bounded worker
// pool applies queue backpressure (429 on overflow), and every request
// carries a deadline.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spmvtune/internal/core"
	"spmvtune/internal/errdefs"
	"spmvtune/internal/mmio"
	"spmvtune/internal/plan"
	"spmvtune/internal/plancache"
	"spmvtune/internal/sparse"
	"spmvtune/internal/trace"
)

// matrixIDLen is the fingerprint prefix used as the public matrix ID:
// 64 bits of the structural hash, short enough for URLs, long enough that
// a collision in one server's working set is vanishingly unlikely.
const matrixIDLen = 16

// Config configures a Server. The zero values of every field except
// Framework select production defaults.
type Config struct {
	// Framework executes the tuned SpMV; required.
	Framework *core.Framework
	// Guard tunes the guarded executor (retries, backoff, tolerance).
	Guard core.GuardOptions
	// Limits bounds uploaded Matrix Market headers (see mmio.Limits);
	// the zero value selects mmio.DefaultLimits.
	Limits mmio.Limits
	// MaxBodyBytes bounds any request body; <= 0 selects 64 MiB.
	MaxBodyBytes int64
	// Workers bounds concurrently executing SpMV requests; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// QueueDepth is how many SpMV requests may wait for a worker beyond
	// the executing ones; the next request is rejected with 429.
	// <= 0 selects 64.
	QueueDepth int
	// ExecWorkers bounds the per-request bin pool: each guarded execution
	// may serve up to this many independent bins concurrently
	// (core.GuardOptions.Workers). <= 0 selects 1 — sequential bins, all
	// parallelism spent across requests. Values > 1 are clamped so the
	// request pool times the bin pool never exceeds GOMAXPROCS; the
	// request pool owns the host budget.
	ExecWorkers int
	// DefaultTimeout is the per-request execution deadline when the
	// request does not carry its own; <= 0 selects 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied deadlines; <= 0 selects 5m.
	MaxTimeout time.Duration
	// MaxBatch bounds the vectors of one SpMV request; <= 0 selects 64.
	MaxBatch int
	// MaxMatrices bounds resident uploaded matrices; the oldest upload is
	// dropped beyond it. <= 0 selects 1024.
	MaxMatrices int
	// Cache configures the shared tuning-plan cache.
	Cache plancache.Options
	// Trace receives one JSONL span per pipeline phase of every traced
	// request (see internal/trace). Nil disables emission. Requests are
	// tagged with their own trace IDs, so one Writer serves the daemon.
	Trace *trace.Writer
	// DisableCounters turns off device performance-counter collection on
	// guarded executions. Counters are on by default in the server — they
	// feed /metrics and GET /v1/profiles — and cost one nil check per
	// collection site when disabled.
	DisableCounters bool
}

func (c Config) withDefaults() Config {
	zero := mmio.Limits{}
	if c.Limits == zero {
		c.Limits = mmio.DefaultLimits()
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.ExecWorkers <= 0 {
		c.ExecWorkers = 1
	}
	// Worker-pool × request-pool must not oversubscribe the host: clamp the
	// per-request bin pool so the product stays within GOMAXPROCS.
	if c.ExecWorkers > 1 {
		if limit := runtime.GOMAXPROCS(0); c.Workers*c.ExecWorkers > limit {
			c.ExecWorkers = limit / c.Workers
			if c.ExecWorkers < 1 {
				c.ExecWorkers = 1
			}
		}
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxMatrices <= 0 {
		c.MaxMatrices = 1024
	}
	return c
}

// matrixEntry is one uploaded matrix with its precomputed cache key.
type matrixEntry struct {
	ID          string
	Fingerprint string
	A           *sparse.CSR
}

// Server implements http.Handler for the spmvd API.
type Server struct {
	cfg   Config
	cache *plancache.Cache
	mux   *http.ServeMux

	mu       sync.RWMutex
	matrices map[string]*matrixEntry
	order    []string // upload order, for capacity eviction
	profiles map[string]*profileRecord

	queue chan struct{} // waiting + executing SpMV requests
	sem   chan struct{} // executing SpMV requests

	traceSeq atomic.Int64 // generated per-request trace IDs

	m metrics
}

// profileRecord is the evidence of the most recent guarded execution
// against one matrix: its per-bin profiles and the trace ID that tags the
// run's spans.
type profileRecord struct {
	TraceID  string
	Degraded bool
	Profiles []plan.ExecProfile
}

// New builds a Server around a framework. The framework's model may be nil
// — the predict path then degrades to the serial fallback plan, which is
// the guarded layer's contract — but the framework itself is required.
func New(cfg Config) (*Server, error) {
	if cfg.Framework == nil {
		return nil, fmt.Errorf("server: Config.Framework is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    plancache.New(cfg.Cache),
		matrices: make(map[string]*matrixEntry),
		profiles: make(map[string]*profileRecord),
		queue:    make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		sem:      make(chan struct{}, cfg.Workers),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/matrices", s.instrument(epMatrices, s.handleUpload))
	mux.HandleFunc("POST /v1/spmv", s.instrument(epSpMV, s.handleSpMV))
	mux.HandleFunc("GET /v1/plans/{id}", s.instrument(epPlans, s.handlePlan))
	mux.HandleFunc("GET /v1/profiles/{id}", s.instrument(epProfiles, s.handleProfiles))
	mux.HandleFunc("GET /healthz", s.instrument(epHealthz, s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.instrument(epMetrics, s.handleMetrics))
	s.mux = mux
	return s, nil
}

// ServeHTTP dispatches to the API mux.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// CacheStats exposes the plan-cache counters (also on /metrics).
func (s *Server) CacheStats() plancache.Stats { return s.cache.Stats() }

// MatrixCount returns the number of resident uploaded matrices.
func (s *Server) MatrixCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.matrices)
}

// statusRecorder captures the response status for error accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with request/latency/error accounting.
func (s *Server) instrument(ep int, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.m.requests[ep].Add(1)
		s.m.inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		s.m.inflight.Add(-1)
		s.m.latencyNs[ep].Add(time.Since(start).Nanoseconds())
		if rec.status >= 400 {
			s.m.errors[ep].Add(1)
		}
	}
}

// errorClass maps an error to its wire class and HTTP status. The classes
// mirror the errdefs taxonomy so clients can branch without parsing
// detail strings.
func errorClass(err error) (string, int) {
	switch {
	case errors.Is(err, errdefs.ErrInvalidMatrix):
		return "invalid", http.StatusBadRequest
	case errors.Is(err, errdefs.ErrCanceled):
		return "canceled", http.StatusGatewayTimeout
	case errors.Is(err, errdefs.ErrBudgetExceeded):
		return "budget_exceeded", http.StatusInternalServerError
	case errors.Is(err, errdefs.ErrKernelFault):
		return "kernel_fault", http.StatusInternalServerError
	}
	return "internal", http.StatusInternalServerError
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	class, status := errorClass(err)
	if class == "canceled" {
		s.m.canceled.Add(1)
	}
	writeJSON(w, status, map[string]string{"error": class, "detail": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// acquire claims a worker-pool slot. ok=false with a nil error means the
// queue is full (HTTP 429); a non-nil error means the context expired
// while waiting for a worker.
func (s *Server) acquire(ctx context.Context) (release func(), ok bool, err error) {
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, false, nil
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem; <-s.queue }, true, nil
	case <-ctx.Done():
		<-s.queue
		return nil, false, errdefs.Canceled(ctx.Err())
	}
}

// requestCtx derives the execution context: the client disconnect channel
// plus the request or default deadline, clamped to the configured maximum.
func (s *Server) requestCtx(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// planFor fetches the matrix's tuning plan through the shared cache:
// singleflight guarantees one tuning pass per structure regardless of
// concurrency. When the request is traced and the plan must be computed,
// the predict phases are emitted under the request's trace ID (only the
// computing request emits them — cache hits skip the predict path by
// design).
func (s *Server) planFor(ctx context.Context, e *matrixEntry, traceID string) (*plan.TuningPlan, bool, error) {
	return s.cache.GetOrCompute(ctx, e.Fingerprint, func(ctx context.Context) (*plan.TuningPlan, error) {
		return s.cfg.Framework.PlanTraced(ctx, e.A, s.cfg.Trace, traceID)
	})
}

// guardOpts derives the per-request guarded-execution options: the
// configured guard settings plus counter collection (unless disabled) and
// the request's trace binding.
func (s *Server) guardOpts(traceID string) core.GuardOptions {
	opt := s.cfg.Guard
	opt.Counters = !s.cfg.DisableCounters
	opt.Trace = s.cfg.Trace
	opt.TraceID = traceID
	opt.Workers = s.cfg.ExecWorkers
	return opt
}

// requestTraceID resolves the trace ID for one request: the client's own
// ID when given, a generated one when tracing is on, empty otherwise.
func (s *Server) requestTraceID(supplied, matrixID string) string {
	if supplied != "" || s.cfg.Trace == nil {
		return supplied
	}
	return fmt.Sprintf("%s-%d", matrixID, s.traceSeq.Add(1))
}

// handleUpload ingests a Matrix Market body. The parser is the hardened
// limit-checked reader — a hostile header cannot OOM the daemon — and the
// matrix ID is derived from the structural fingerprint, so re-uploading
// the same structure is idempotent.
func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	a, err := mmio.ReadWithLimits(body, s.cfg.Limits)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]string{
				"error": "invalid", "detail": fmt.Sprintf("body exceeds %d bytes", tooLarge.Limit)})
			return
		}
		s.writeError(w, err)
		return
	}
	fp := plan.Fingerprint(a)
	id := fp[:matrixIDLen]

	s.mu.Lock()
	if _, exists := s.matrices[id]; !exists {
		s.matrices[id] = &matrixEntry{ID: id, Fingerprint: fp, A: a}
		s.order = append(s.order, id)
		for len(s.order) > s.cfg.MaxMatrices {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.matrices, oldest)
			delete(s.profiles, oldest)
		}
	}
	s.mu.Unlock()

	writeJSON(w, http.StatusCreated, map[string]any{
		"id":          id,
		"fingerprint": fp,
		"rows":        a.Rows,
		"cols":        a.Cols,
		"nnz":         a.NNZ(),
	})
}

func (s *Server) matrix(id string) (*matrixEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.matrices[id]
	return e, ok
}

// spmvResponse is the body of a successful POST /v1/spmv.
type spmvResponse struct {
	Matrix    string      `json:"matrix"`
	Plan      string      `json:"plan"` // plan fingerprint
	U         int         `json:"u"`
	CacheHit  bool        `json:"cacheHit"`
	Degraded  bool        `json:"degraded"`
	Fallbacks int         `json:"fallbacks"`
	TraceID   string      `json:"traceId,omitempty"`
	Result    []float64   `json:"result,omitempty"`
	Results   [][]float64 `json:"results,omitempty"`
	ElapsedMs float64     `json:"elapsedMs"`
}

// handleSpMV executes one or a batch of tuned multiplications. The hot
// path is: resolve matrix → claim a worker (or 429) → plan via the shared
// cache (singleflight) → guarded execution per vector.
func (s *Server) handleSpMV(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, errdefs.Invalidf("server: read body: %v", err))
		return
	}
	req, err := decodeSpMVRequest(body, s.cfg.MaxBatch)
	if err != nil {
		s.writeError(w, err)
		return
	}
	e, ok := s.matrix(req.Matrix)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "not_found", "detail": "unknown matrix id " + req.Matrix})
		return
	}
	vecs := req.Batch()
	for i, vec := range vecs {
		if len(vec) != e.A.Cols {
			s.writeError(w, errdefs.Invalidf("server: vector %d has length %d, matrix has %d columns", i, len(vec), e.A.Cols))
			return
		}
	}

	ctx, cancel := s.requestCtx(r, req.TimeoutMs)
	defer cancel()

	release, ok, err := s.acquire(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if !ok {
		s.m.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": "overloaded", "detail": "worker queue full"})
		return
	}
	defer release()

	start := time.Now()
	traceID := s.requestTraceID(req.TraceID, e.ID)
	p, cacheHit, err := s.planFor(ctx, e, traceID)
	if err != nil {
		s.writeError(w, err)
		return
	}

	resp := spmvResponse{Matrix: e.ID, Plan: p.Fingerprint, U: p.U, CacheHit: cacheHit, TraceID: traceID}
	opt := s.guardOpts(traceID)
	var lastRep *core.ExecReport
	for _, vec := range vecs {
		u := make([]float64, e.A.Rows)
		rep, err := s.cfg.Framework.ExecutePlanOpts(ctx, p, e.A, vec, u, opt)
		if err != nil {
			s.writeError(w, err)
			return
		}
		if rep.Degraded() {
			resp.Degraded = true
			s.m.degraded.Add(1)
		}
		resp.Fallbacks += rep.Fallbacks
		resp.Results = append(resp.Results, u)
		s.m.vectors.Add(1)
		s.m.observeReport(rep)
		lastRep = rep
	}
	if lastRep != nil && len(lastRep.Profiles) > 0 {
		s.mu.Lock()
		if _, resident := s.matrices[e.ID]; resident {
			s.profiles[e.ID] = &profileRecord{
				TraceID:  traceID,
				Degraded: resp.Degraded,
				Profiles: lastRep.Profiles,
			}
		}
		s.mu.Unlock()
	}
	if len(req.Vector) > 0 {
		resp.Result = resp.Results[0]
		resp.Results = nil
	}
	resp.ElapsedMs = float64(time.Since(start).Nanoseconds()) / 1e6
	writeJSON(w, http.StatusOK, resp)
}

// handlePlan returns the tuning plan for an uploaded matrix, computing and
// caching it if no request has needed it yet.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.matrix(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "not_found", "detail": "unknown matrix id " + id})
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	p, _, err := s.planFor(ctx, e, "")
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

// profilesResponse is the body of GET /v1/profiles/{id}: the matrix's
// tuning plan with the per-bin execution profiles of its most recent
// guarded run attached (TuningPlan.Profiles), plus the trace ID tagging
// that run's spans.
type profilesResponse struct {
	Matrix   string           `json:"matrix"`
	TraceID  string           `json:"traceId,omitempty"`
	Degraded bool             `json:"degraded"`
	Plan     *plan.TuningPlan `json:"plan"`
}

// handleProfiles returns the execution evidence for an uploaded matrix:
// 404 until at least one SpMV has run against it (profiles are measured,
// never synthesized).
func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := s.matrix(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "not_found", "detail": "unknown matrix id " + id})
		return
	}
	s.mu.RLock()
	rec := s.profiles[id]
	s.mu.RUnlock()
	if rec == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "not_found", "detail": "no execution profiled yet for matrix " + id + " — POST /v1/spmv first"})
		return
	}
	ctx, cancel := s.requestCtx(r, 0)
	defer cancel()
	p, _, err := s.planFor(ctx, e, "")
	if err != nil {
		s.writeError(w, err)
		return
	}
	// Attach the evidence to a copy: the cached plan stays immutable.
	withProfiles := *p
	withProfiles.Profiles = rec.Profiles
	writeJSON(w, http.StatusOK, profilesResponse{
		Matrix:   id,
		TraceID:  rec.TraceID,
		Degraded: rec.Degraded,
		Plan:     &withProfiles,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics renders the cache and request counters as a plain-text
// exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	st := s.cache.Stats()
	fmt.Fprintf(w, "spmvd_plan_cache_hits %d\n", st.Hits)
	fmt.Fprintf(w, "spmvd_plan_cache_misses %d\n", st.Misses)
	fmt.Fprintf(w, "spmvd_plan_cache_disk_hits %d\n", st.DiskHits)
	fmt.Fprintf(w, "spmvd_plan_cache_evictions %d\n", st.Evictions)
	fmt.Fprintf(w, "spmvd_plan_cache_expirations %d\n", st.Expirations)
	fmt.Fprintf(w, "spmvd_plan_cache_entries %d\n", st.Entries)
	// The tuning sum/count pair exposes the mean wall-clock cost a cache
	// miss pays computing its plan — the latency the cache amortizes away.
	fmt.Fprintf(w, "spmvd_tune_seconds_sum %.6f\n", float64(st.TuneNs)/1e9)
	fmt.Fprintf(w, "spmvd_tune_seconds_count %d\n", st.Tunes)
	// The search cost cache sits below the plan cache: it amortizes the
	// per-bin kernel simulations inside one exhaustive search, while the
	// plan cache above amortizes whole tuning plans across requests.
	ss := core.SearchCacheStats()
	fmt.Fprintf(w, "spmvd_search_cache_hits %d\n", ss.Hits)
	fmt.Fprintf(w, "spmvd_search_cache_misses %d\n", ss.Misses)
	fmt.Fprintf(w, "spmvd_search_cache_pruned %d\n", ss.Pruned)
	fmt.Fprintf(w, "spmvd_matrices_stored %d\n", s.MatrixCount())
	s.m.writeTo(w)
}
