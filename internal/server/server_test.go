package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spmvtune/internal/c50"
	"spmvtune/internal/core"
	"spmvtune/internal/hsa"
	"spmvtune/internal/matgen"
	"spmvtune/internal/mmio"
	"spmvtune/internal/sparse"
)

// testFramework trains one tiny model for the whole package (training
// labels matrices by exhaustive simulated search, so share it).
var (
	fwOnce sync.Once
	fwTest *core.Framework
)

func testFramework(t *testing.T) *core.Framework {
	t.Helper()
	fwOnce.Do(func() {
		cfg := core.Config{Device: hsa.DefaultConfig(), MaxBins: 32, Us: []int{10, 50, 200, 1000}}
		td := core.NewTrainingData(cfg)
		td.AddMatrix(cfg, matgen.RoadNetwork(600, 1))
		td.AddMatrix(cfg, matgen.BlockFEM(80, 150, 30, 2))
		fwTest = core.NewFramework(cfg, core.TrainModel(td, cfg, c50.DefaultOptions()))
	})
	return fwTest
}

func newTestServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Framework: testFramework(t)}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// uploadMatrix posts a as Matrix Market and returns the assigned ID.
func uploadMatrix(t *testing.T, ts *httptest.Server, a *sparse.CSR) string {
	t.Helper()
	var buf bytes.Buffer
	if err := mmio.Write(&buf, a); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/matrices", "text/plain", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("upload status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		ID   string `json:"id"`
		Rows int    `json:"rows"`
		NNZ  int    `json:"nnz"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Rows != a.Rows || out.NNZ != a.NNZ() {
		t.Fatalf("upload echo wrong: %+v", out)
	}
	return out.ID
}

func postSpMV(t *testing.T, ts *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/spmv", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, blob
}

func scrapeMetric(t *testing.T, ts *httptest.Server, name string) int64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(blob), "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 && strings.HasPrefix(line, name+" ") {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, blob)
	return 0
}

// TestConcurrentSpMVSingleTuningPass is the PR's acceptance criterion: N
// concurrent requests for the same uploaded matrix tune exactly once, the
// cache hit counter reflects N-1 hits, and every result matches the
// reference within tolerance.
func TestConcurrentSpMVSingleTuningPass(t *testing.T) {
	_, ts := newTestServer(t, nil)
	a := matgen.Mixed(500, 500, 25, []int{2, 60}, 7)
	id := uploadMatrix(t, ts, a)

	v := make([]float64, a.Cols)
	for i := range v {
		v[i] = 1.0 / float64(i+1)
	}
	want := make([]float64, a.Rows)
	a.MulVec(v, want)
	vecJSON, _ := json.Marshal(v)
	reqBody := fmt.Sprintf(`{"matrix":%q,"vector":%s}`, id, vecJSON)

	const n = 8
	var wg sync.WaitGroup
	fail := make(chan string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/spmv", "application/json", strings.NewReader(reqBody))
			if err != nil {
				fail <- err.Error()
				return
			}
			defer resp.Body.Close()
			blob, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				fail <- fmt.Sprintf("status %d: %s", resp.StatusCode, blob)
				return
			}
			var out spmvResponse
			if err := json.Unmarshal(blob, &out); err != nil {
				fail <- err.Error()
				return
			}
			if len(out.Result) != a.Rows {
				fail <- fmt.Sprintf("result length %d", len(out.Result))
				return
			}
			if i := sparse.FirstVecDiff(want, out.Result, 1e-9); i >= 0 {
				fail <- fmt.Sprintf("row %d differs from reference", i)
			}
		}()
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}

	if got := scrapeMetric(t, ts, "spmvd_plan_cache_misses"); got != 1 {
		t.Errorf("cache misses %d, want exactly 1 tuning pass", got)
	}
	if got := scrapeMetric(t, ts, "spmvd_plan_cache_hits"); got != n-1 {
		t.Errorf("cache hits %d, want %d", got, n-1)
	}
	if got := scrapeMetric(t, ts, "spmvd_spmv_vectors_total"); got != n {
		t.Errorf("vectors served %d, want %d", got, n)
	}
}

// TestExpiredDeadlineReturnsCanceled is the second acceptance clause: a
// request whose deadline has already expired gets the canceled error
// class, deterministically, instead of hanging. The request context is
// pre-canceled and the handler invoked directly so no wall-clock race is
// involved.
func TestExpiredDeadlineReturnsCanceled(t *testing.T) {
	s, ts := newTestServer(t, nil)
	a := matgen.Mixed(500, 500, 25, []int{2, 60}, 7)
	id := uploadMatrix(t, ts, a)

	// Warm the plan cache so the canceled request exercises execution, not
	// planning.
	v := make([]float64, a.Cols)
	vecJSON, _ := json.Marshal(v)
	body := fmt.Sprintf(`{"matrix":%q,"vector":%s}`, id, vecJSON)
	if resp, blob := postSpMV(t, ts, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup status %d: %s", resp.StatusCode, blob)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/spmv", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		s.ServeHTTP(rec, req)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("request with expired deadline hung")
	}
	var out struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("body %q: %v", rec.Body.String(), err)
	}
	if out.Error != "canceled" {
		t.Errorf("error class %q (status %d), want canceled", out.Error, rec.Code)
	}
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504", rec.Code)
	}
	if got := scrapeMetric(t, ts, "spmvd_canceled_total"); got < 1 {
		t.Error("canceled counter did not move")
	}
}

func TestBatchSpMVAndPlanEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)
	a := matgen.Banded(300, 5, 11)
	id := uploadMatrix(t, ts, a)

	vecs := make([][]float64, 3)
	for k := range vecs {
		vecs[k] = make([]float64, a.Cols)
		for i := range vecs[k] {
			vecs[k][i] = float64((i + k) % 7)
		}
	}
	body, _ := json.Marshal(map[string]any{"matrix": id, "vectors": vecs})
	resp, blob := postSpMV(t, ts, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, blob)
	}
	var out spmvResponse
	if err := json.Unmarshal(blob, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results", len(out.Results))
	}
	for k := range vecs {
		want := make([]float64, a.Rows)
		a.MulVec(vecs[k], want)
		if i := sparse.FirstVecDiff(want, out.Results[k], 1e-9); i >= 0 {
			t.Errorf("batch %d row %d wrong", k, i)
		}
	}

	// The plan endpoint serves the cached plan.
	presp, err := http.Get(ts.URL + "/v1/plans/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	pblob, _ := io.ReadAll(presp.Body)
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d: %s", presp.StatusCode, pblob)
	}
	var p struct {
		Fingerprint string `json:"fingerprint"`
		U           int    `json:"u"`
		Bins        []any  `json:"bins"`
	}
	if err := json.Unmarshal(pblob, &p); err != nil {
		t.Fatal(err)
	}
	if p.Fingerprint == "" || len(p.Bins) == 0 {
		t.Errorf("plan: %s", pblob)
	}
	if out.Plan != p.Fingerprint {
		t.Error("spmv response and plan endpoint disagree on fingerprint")
	}
}

func TestRequestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBatch = 2 })
	a := matgen.Banded(100, 3, 1)
	id := uploadMatrix(t, ts, a)

	cases := []struct {
		name, body string
		status     int
	}{
		{"bad json", `{`, 400},
		{"no matrix", `{"vector":[1]}`, 400},
		{"no vector", fmt.Sprintf(`{"matrix":%q}`, id), 400},
		{"both forms", fmt.Sprintf(`{"matrix":%q,"vector":[1],"vectors":[[1]]}`, id), 400},
		{"unknown matrix", `{"matrix":"ffffffffffffffff","vector":[1]}`, 404},
		{"wrong length", fmt.Sprintf(`{"matrix":%q,"vector":[1,2,3]}`, id), 400},
		{"batch too big", fmt.Sprintf(`{"matrix":%q,"vectors":[[1],[1],[1]]}`, id), 400},
		{"negative timeout", fmt.Sprintf(`{"matrix":%q,"vector":[1],"timeoutMs":-5}`, id), 400},
	}
	for _, tc := range cases {
		resp, blob := postSpMV(t, ts, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d want %d (%s)", tc.name, resp.StatusCode, tc.status, blob)
		}
	}

	// Upload rejections: malformed body and a header past the limits.
	resp, err := http.Post(ts.URL+"/v1/matrices", "text/plain", strings.NewReader("not a matrix"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage upload status %d", resp.StatusCode)
	}
	huge := "%%MatrixMarket matrix coordinate real general\n99999999999 99999999999 1\n1 1 1.0\n"
	resp, err = http.Post(ts.URL+"/v1/matrices", "text/plain", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized header status %d", resp.StatusCode)
	}
}

// TestQueueBackpressure saturates a 1-worker, 1-deep queue and checks that
// overflow requests get 429 with the overloaded class.
func TestQueueBackpressure(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 1
	})
	a := matgen.Banded(100, 3, 1)
	id := uploadMatrix(t, ts, a)

	// Occupy the single worker slot and the single queue slot directly —
	// deterministic, no timing on real requests.
	s.sem <- struct{}{}
	s.queue <- struct{}{}
	s.queue <- struct{}{} // queue cap is Workers+QueueDepth = 2
	defer func() { <-s.sem; <-s.queue; <-s.queue }()

	vec, _ := json.Marshal(make([]float64, a.Cols))
	resp, blob := postSpMV(t, ts, fmt.Sprintf(`{"matrix":%q,"vector":%s}`, id, vec))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d: %s", resp.StatusCode, blob)
	}
	var out struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(blob, &out); err != nil || out.Error != "overloaded" {
		t.Errorf("body %s", blob)
	}
	if got := scrapeMetric(t, ts, "spmvd_rejected_total"); got != 1 {
		t.Errorf("rejected counter %d", got)
	}
}

func TestHealthzAndUploadIdempotent(t *testing.T) {
	_, ts := newTestServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(blob), "ok") {
		t.Errorf("healthz: %d %s", resp.StatusCode, blob)
	}

	a := matgen.RoadNetwork(400, 9)
	id1 := uploadMatrix(t, ts, a)
	id2 := uploadMatrix(t, ts, a)
	if id1 != id2 {
		t.Errorf("same structure produced different ids: %s %s", id1, id2)
	}
	if got := scrapeMetric(t, ts, "spmvd_matrices_stored"); got != 1 {
		t.Errorf("stored %d matrices, want deduped 1", got)
	}
}

func TestMatrixCapacityEviction(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxMatrices = 2 })
	ids := make([]string, 3)
	for i := range ids {
		ids[i] = uploadMatrix(t, ts, matgen.Banded(100+10*i, 3, int64(i)))
	}
	vec0, _ := json.Marshal(make([]float64, 100))
	resp, _ := postSpMV(t, ts, fmt.Sprintf(`{"matrix":%q,"vector":%s}`, ids[0], vec0))
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("oldest matrix should have been evicted, got %d", resp.StatusCode)
	}
	vec2, _ := json.Marshal(make([]float64, 120))
	resp, blob := postSpMV(t, ts, fmt.Sprintf(`{"matrix":%q,"vector":%s}`, ids[2], vec2))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("newest matrix gone: %d %s", resp.StatusCode, blob)
	}
}
