package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"spmvtune/internal/core"
	"spmvtune/internal/errdefs"
	"spmvtune/internal/plan"
	"spmvtune/internal/retrain"
	"spmvtune/internal/solvers"
	"spmvtune/internal/sparse"
)

// A session is resident iterative-workload state: the matrix, its pinned
// TuningPlan, and the solver's scratch buffers stay server-side across
// iterations, so per-iteration requests carry (almost) nothing. This is
// the serving-layer shape of the paper's amortization argument — one
// tuning pass, hundreds of multiplications — applied across HTTP
// requests instead of within one process.
//
// Concurrency contract: the registry map is guarded by Server.smu; each
// session's solver state is guarded by its own mu. Handlers TryLock the
// session — a second concurrent iterate gets 409 busy instead of
// corrupting solver state or blocking a worker slot. lastUsed is atomic
// so the TTL sweep reads it without the session lock.
//
// Plan pinning contract: the pinned plan is re-validated against the
// cache's wanted model version at every iteration boundary (before each
// Step), never mid-iteration — a retrain hot-swap lands between Steps,
// so one GMRES restart cycle always runs under one plan. Re-resolution
// goes through planFor, i.e. the shared cache's singleflight: N sessions
// on one matrix re-tune it exactly once after a swap.
type session struct {
	ID     string
	e      *matrixEntry
	solver string
	mode   string

	mu      sync.Mutex
	evicted bool
	stepper solvers.Stepper // nil for spmv sessions
	u       []float64       // spmv sessions: resident output scratch
	maxIter int
	traceID string

	plan      *plan.TuningPlan
	retunes   int64
	degraded  bool
	fallbacks int64
	done      bool
	failed    error // sticky solver breakdown

	lastUsed atomic.Int64 // Config.Clock nanos; TTL sweep reads without mu
}

// remaining is the session's unused iteration budget (spmv sessions are
// budgetless — the client drives every product).
func (sess *session) remaining() int {
	if sess.solver == solverSpMV {
		return 1
	}
	return sess.maxIter - sess.stepper.Status().Iterations
}

// sessionStatus is the wire form of a session's state, shared by create
// (201), iterate (200), and GET (200) responses.
type sessionStatus struct {
	Session  string `json:"session"`
	Matrix   string `json:"matrix"`
	Solver   string `json:"solver"`
	Plan     string `json:"plan"` // pinned plan fingerprint
	CacheHit bool   `json:"cacheHit,omitempty"`
	// ModelVersion is the pinned plan's model version; after a retrain
	// hot-swap it changes at the next iteration boundary, and Retunes
	// counts how many boundary re-pins this session has paid.
	ModelVersion string  `json:"modelVersion,omitempty"`
	Retunes      int64   `json:"retunes"`
	Iterations   int     `json:"iterations"`
	Residual     float64 `json:"residual"`
	Converged    bool    `json:"converged"`
	// Done means the session stopped advancing: converged, budget
	// exhausted, or broken down. Iterating a done session returns its
	// final state (with X) without work.
	Done           bool      `json:"done"`
	Degraded       bool      `json:"degraded"`
	DegradedReason string    `json:"degradedReason,omitempty"`
	Fallbacks      int64     `json:"fallbacks"`
	Lambda         float64   `json:"lambda,omitempty"` // power: dominant eigenvalue estimate
	TraceID        string    `json:"traceId,omitempty"`
	X              []float64 `json:"x,omitempty"`      // solution, when done or explicitly fetched
	Result         []float64 `json:"result,omitempty"` // spmv sessions: the product
}

// status snapshots the session under its lock. withX attaches the current
// iterate (copied — the stepper's buffer stays private).
func (sess *session) status(withX bool) sessionStatus {
	st := sessionStatus{
		Session:   sess.ID,
		Matrix:    sess.e.ID,
		Solver:    sess.solver,
		Retunes:   sess.retunes,
		Done:      sess.done,
		Degraded:  sess.degraded,
		Fallbacks: sess.fallbacks,
		TraceID:   sess.traceID,
	}
	if sess.plan != nil {
		st.Plan = sess.plan.Fingerprint
		st.ModelVersion = sess.plan.ModelVersion
	}
	if sess.degraded && sess.plan != nil && sess.plan.Fallback {
		st.DegradedReason = "breaker_open"
	}
	if sess.stepper != nil {
		s := sess.stepper.Status()
		st.Iterations, st.Residual, st.Converged = s.Iterations, s.Residual, s.Converged
		if ps, ok := sess.stepper.(*solvers.PowerStepper); ok {
			st.Lambda = ps.Lambda()
		}
		if withX {
			st.X = append([]float64(nil), sess.stepper.Solution()...)
		}
	}
	return st
}

// SessionCount returns the number of live solver sessions (the
// spmvd_sessions_active gauge).
func (s *Server) SessionCount() int {
	s.smu.Lock()
	defer s.smu.Unlock()
	return len(s.sessions)
}

// touch stamps the session's idle clock.
func (s *Server) touch(sess *session) {
	sess.lastUsed.Store(s.cfg.Clock().UnixNano())
}

// sweepSessions evicts every session idle past the TTL. Lazy — it runs at
// the head of each session operation instead of on a timer, so an idle
// daemon spends nothing. Busy sessions (TryLock fails) are by definition
// not idle and are skipped.
func (s *Server) sweepSessions() {
	ttl := s.cfg.SessionTTL.Nanoseconds()
	now := s.cfg.Clock().UnixNano()
	s.smu.Lock()
	defer s.smu.Unlock()
	for id, sess := range s.sessions {
		if now-sess.lastUsed.Load() < ttl {
			continue
		}
		if !sess.mu.TryLock() {
			continue
		}
		sess.evicted = true
		sess.mu.Unlock()
		delete(s.sessions, id)
		s.m.sessionEvictions.Add(1)
	}
}

// registerSession adds a session, evicting the oldest idle one when at
// capacity. Returns false when every resident session is busy — the
// caller rejects the create rather than evicting live work.
func (s *Server) registerSession(sess *session) bool {
	s.smu.Lock()
	defer s.smu.Unlock()
	for len(s.sessions) >= s.cfg.MaxSessions {
		// Pick the oldest idle session, holding at most the current best
		// candidate's lock while scanning (all TryLock — never blocks).
		victimID := ""
		var victim *session
		var oldest int64
		for id, cand := range s.sessions {
			t := cand.lastUsed.Load()
			if victim != nil && t >= oldest {
				continue
			}
			if !cand.mu.TryLock() {
				continue
			}
			if victim != nil {
				victim.mu.Unlock()
			}
			victimID, victim, oldest = id, cand, t
		}
		if victim == nil {
			return false
		}
		victim.evicted = true
		victim.mu.Unlock()
		delete(s.sessions, victimID)
		s.m.sessionEvictions.Add(1)
	}
	s.sessions[sess.ID] = sess
	return true
}

// session resolves a session ID.
func (s *Server) session(id string) (*session, bool) {
	s.smu.Lock()
	defer s.smu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// evictIdleSessions drops every idle session — the drain path. Busy
// sessions finish their in-flight iterate and find themselves evicted at
// the next request.
func (s *Server) evictIdleSessions() int {
	s.smu.Lock()
	defer s.smu.Unlock()
	n := 0
	for id, sess := range s.sessions {
		if !sess.mu.TryLock() {
			continue
		}
		sess.evicted = true
		sess.mu.Unlock()
		delete(s.sessions, id)
		s.m.sessionEvictions.Add(1)
		n++
	}
	return n
}

// sessionExecutor is the SpMV backend a session's stepper multiplies
// through: the guarded plan executor over the session's pinned plan, with
// the same fallback-chain semantics, accounting, and retrain evidence
// feed as the stateless POST /v1/spmv path. Called only under sess.mu.
func (s *Server) sessionExecutor(sess *session) solvers.SpMVCtx {
	return func(ctx context.Context, v, u []float64) error {
		if s.cfg.ExecHook != nil {
			s.cfg.ExecHook()
		}
		if s.co != nil {
			// Coalesced path: this iterate's multiply fuses with concurrent
			// same-fingerprint traffic (other sessions, stateless requests).
			// Safe under sess.mu — the flush runs on the window timer's
			// goroutine or another request's, never behind this session's
			// lock. The flush owns the vector/degradation metrics and the
			// retrain evidence; only the session's own state updates here.
			degraded, fallbacks, err := s.co.execute(ctx, sess.e, sess.plan, s.guardOpts(sess.traceID), sess.traceID, v, u)
			if err != nil {
				return err
			}
			if degraded {
				sess.degraded = true
			}
			sess.fallbacks += int64(fallbacks)
			return nil
		}
		rep, err := s.cfg.Framework.ExecutePlanOpts(ctx, sess.plan, sess.e.A, v, u, s.guardOpts(sess.traceID))
		if err != nil {
			return err
		}
		if rep.Degraded() {
			sess.degraded = true
			s.m.degraded.Add(1)
		}
		sess.fallbacks += int64(rep.Fallbacks)
		s.m.vectors.Add(1)
		s.m.observeReport(rep)
		s.recordEvidence(sess.e, sess.plan, sess.traceID, rep, sess.degraded, 1)
		return nil
	}
}

// repinIfStale re-validates the session's pinned plan against the cache's
// wanted model version. Called at iteration boundaries only (between
// Steps, under sess.mu): a retrain hot-swap mid-solve takes effect at the
// next boundary, never mid-iteration. The re-resolution funnels through
// planFor — the shared singleflight — so N sessions sharing a matrix pay
// exactly one re-tune per model rollout.
func (s *Server) repinIfStale(ctx context.Context, sess *session) error {
	want := s.cache.ModelVersion()
	if sess.plan != nil && (want == "" || sess.plan.ModelVersion == want) {
		return nil
	}
	var prev string
	had := sess.plan != nil
	if had {
		prev = sess.plan.ModelVersion
	}
	p, _, degraded, err := s.planFor(ctx, sess.e, sess.traceID)
	if err != nil {
		return err
	}
	if had && p.ModelVersion != prev {
		sess.retunes++
		s.m.sessionRetunes.Add(1)
	}
	sess.plan = p
	if degraded {
		sess.degraded = true
	}
	return nil
}

// advance runs up to steps iterations at the session's stepper,
// re-pinning the plan at each boundary. It stops early on convergence,
// budget exhaustion, breakdown (sticky, recorded on the session), or a
// context/executor error (transient, session stays resumable). Called
// under sess.mu.
func (s *Server) advance(ctx context.Context, sess *session, steps int) error {
	for i := 0; i < steps; i++ {
		if sess.remaining() <= 0 {
			sess.done = true
			return nil
		}
		if err := s.repinIfStale(ctx, sess); err != nil {
			return err
		}
		before := sess.stepper.Status().Iterations
		st, err := sess.stepper.Step(ctx)
		s.m.sessionIterations.Add(int64(st.Iterations - before))
		if err != nil {
			if errors.Is(err, solvers.ErrBreakdown) {
				sess.failed = err
				sess.done = true
			}
			return err
		}
		if st.Converged {
			sess.done = true
			return nil
		}
		if sess.remaining() <= 0 {
			sess.done = true
			return nil
		}
	}
	return nil
}

// writeBreakdown reports a solver breakdown: a well-formed 422 with its
// own wire class — the math failed on this input (matrix not SPD, zero
// diagonal), which is neither a client coding error (400) nor a server
// fault (5xx).
func writeBreakdown(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusUnprocessableEntity, map[string]string{
		"error": "breakdown", "detail": err.Error()})
}

// newStepper builds the solver state machine for a session, all workspace
// preallocated. b and x0 are already length-checked by the caller.
func newStepper(req *SolveRequest, mul solvers.SpMVCtx, a *sparse.CSR) (solvers.Stepper, error) {
	x := make([]float64, a.Cols)
	copy(x, req.X0)
	switch req.Solver {
	case solverCG:
		return solvers.NewCGStepper(mul, req.B, x, req.Tol)
	case solverJacobi:
		return solvers.NewJacobiStepper(a, mul, req.B, x, req.Tol)
	case solverGMRES:
		return solvers.NewGMRESStepper(mul, req.B, x, req.Tol, req.Restart)
	case solverPower:
		if len(req.X0) == 0 {
			for i := range x {
				x[i] = 1
			}
		}
		return solvers.NewPowerStepper(mul, x, req.Tol)
	case solverPageRank:
		return solvers.NewPageRankStepper(mul, x, req.Damping, req.Tol)
	}
	return nil, errdefs.Invalidf("server: unknown solver %q", req.Solver)
}

// handleSolve creates a solver session (mode "session") or runs a whole
// streamed solve (mode "run"). The create path pays the expensive work
// once — plan resolution through the shared cache, solver workspace
// allocation — so iterates are pure compute.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, errdefs.Invalidf("server: read body: %v", err))
		return
	}
	req, err := decodeSolveRequest(body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if s.draining.Load() {
		s.writeError(w, errdefs.Unavailablef("server: draining — no new sessions"))
		return
	}
	e, ok := s.matrix(req.Matrix)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "not_found", "detail": "unknown matrix id " + req.Matrix})
		return
	}
	if req.Solver != solverSpMV && e.A.Rows != e.A.Cols {
		s.writeError(w, errdefs.Invalidf("server: solver %s needs a square matrix, got %dx%d", req.Solver, e.A.Rows, e.A.Cols))
		return
	}
	if len(req.B) > 0 && len(req.B) != e.A.Rows {
		s.writeError(w, errdefs.Invalidf("server: b has length %d, matrix has %d rows", len(req.B), e.A.Rows))
		return
	}
	if len(req.X0) > 0 && len(req.X0) != e.A.Cols {
		s.writeError(w, errdefs.Invalidf("server: x0 has length %d, matrix has %d columns", len(req.X0), e.A.Cols))
		return
	}

	ctx, cancel := s.requestCtx(r, req.TimeoutMs)
	defer cancel()
	release, ok, err := s.acquire(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if !ok {
		s.m.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": "overloaded", "detail": "worker queue full"})
		return
	}
	defer release()

	s.sweepSessions()

	sess := &session{
		ID:      fmt.Sprintf("sv-%08x", s.sessSeq.Add(1)),
		e:       e,
		solver:  req.Solver,
		mode:    req.Mode,
		maxIter: req.MaxIterations,
		traceID: s.requestTraceID(req.TraceID, e.ID),
	}
	// Pin the plan now: the session's one tuning pass (or cache hit).
	p, cacheHit, planDegraded, err := s.planFor(ctx, e, sess.traceID)
	if err != nil {
		s.writeError(w, err)
		return
	}
	sess.plan = p
	sess.degraded = planDegraded
	if req.Solver == solverSpMV {
		sess.u = make([]float64, e.A.Rows)
	} else {
		st, err := newStepper(req, s.sessionExecutor(sess), e.A)
		if err != nil {
			if errors.Is(err, solvers.ErrBreakdown) {
				writeBreakdown(w, err)
				return
			}
			s.writeError(w, errdefs.Invalidf("server: %v", err))
			return
		}
		sess.stepper = st
	}

	if req.Mode == "run" {
		// Transient session: never registered, lives for this response.
		s.runSolve(ctx, w, sess)
		return
	}

	s.touch(sess)
	if !s.registerSession(sess) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": "overloaded", "detail": fmt.Sprintf("all %d sessions busy", s.cfg.MaxSessions)})
		return
	}
	st := sess.status(false)
	st.CacheHit = cacheHit
	writeJSON(w, http.StatusCreated, st)
}

// runSolve is mode "run": the server drives the whole solve, streaming
// one JSONL progress line per iteration so the client watches convergence
// live, then a final line with the solution. Cancellation (client
// disconnect or deadline) stops between iterations through the same ctx
// the stateless path uses. Model hot-swaps land at iteration boundaries
// here too — the stream's modelVersion field makes a mid-solve rollout
// visible to the client.
func (s *Server) runSolve(ctx context.Context, w http.ResponseWriter, sess *session) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	type progress struct {
		Iter         int     `json:"iter"`
		Residual     float64 `json:"residual"`
		ModelVersion string  `json:"modelVersion,omitempty"`
		Retunes      int64   `json:"retunes,omitempty"`
	}
	for !sess.done {
		if err := s.advance(ctx, sess, 1); err != nil {
			class, _ := errorClass(err)
			if errors.Is(err, solvers.ErrBreakdown) {
				class = "breakdown"
			}
			_ = enc.Encode(map[string]string{"error": class, "detail": err.Error()})
			return
		}
		st := sess.stepper.Status()
		mv := ""
		if sess.plan != nil {
			mv = sess.plan.ModelVersion
		}
		_ = enc.Encode(progress{Iter: st.Iterations, Residual: st.Residual, ModelVersion: mv, Retunes: sess.retunes})
		flush()
	}
	final := sess.status(true)
	final.Done = true
	_ = enc.Encode(final)
	flush()
}

// handleIterate advances a session. The request body is tiny (steps
// count, or one vector for spmv sessions): everything heavy is already
// resident. A busy session — another iterate in flight — answers 409
// instead of queueing, so solver state is never contended.
func (s *Server) handleIterate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, errdefs.Invalidf("server: read body: %v", err))
		return
	}
	req, err := decodeIterateRequest(body)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.sweepSessions()
	sess, ok := s.session(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "not_found", "detail": "unknown session " + id})
		return
	}
	if !sess.mu.TryLock() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": "busy", "detail": "session " + id + " has an iterate in flight"})
		return
	}
	defer sess.mu.Unlock()
	if sess.evicted {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "not_found", "detail": "session " + id + " was evicted"})
		return
	}
	defer s.touch(sess)
	if sess.failed != nil {
		writeBreakdown(w, sess.failed)
		return
	}
	if sess.solver == solverSpMV {
		s.iterateSpMV(w, r, sess, req)
		return
	}
	if len(req.Vector) > 0 {
		s.writeError(w, errdefs.Invalidf("server: solver %s sessions do not take a vector", sess.solver))
		return
	}
	if sess.done {
		writeJSON(w, http.StatusOK, sess.status(true))
		return
	}

	ctx, cancel := s.requestCtx(r, req.TimeoutMs)
	defer cancel()
	release, ok, err := s.acquire(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if !ok {
		s.m.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": "overloaded", "detail": "worker queue full"})
		return
	}
	defer release()

	if err := s.advance(ctx, sess, req.Steps); err != nil {
		if errors.Is(err, solvers.ErrBreakdown) {
			writeBreakdown(w, err)
			return
		}
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.status(sess.done))
}

// iterateSpMV is the iterate path for spmv sessions: one tuned product
// per request into the resident output buffer, plan re-pinned at the
// boundary like every other solver.
func (s *Server) iterateSpMV(w http.ResponseWriter, r *http.Request, sess *session, req *IterateRequest) {
	if len(req.Vector) == 0 {
		s.writeError(w, errdefs.Invalidf("server: spmv sessions require a vector per iterate"))
		return
	}
	if len(req.Vector) != sess.e.A.Cols {
		s.writeError(w, errdefs.Invalidf("server: vector has length %d, matrix has %d columns", len(req.Vector), sess.e.A.Cols))
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMs)
	defer cancel()
	release, ok, err := s.acquire(ctx)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if !ok {
		s.m.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": "overloaded", "detail": "worker queue full"})
		return
	}
	defer release()
	if err := s.repinIfStale(ctx, sess); err != nil {
		s.writeError(w, err)
		return
	}
	if err := s.sessionExecutor(sess)(ctx, req.Vector, sess.u); err != nil {
		s.writeError(w, err)
		return
	}
	s.m.sessionIterations.Add(1)
	st := sess.status(false)
	st.Result = sess.u
	writeJSON(w, http.StatusOK, st)
}

// handleSession returns a session's current state including the iterate
// (GET) — progress polling for a client that lost an iterate response.
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.sweepSessions()
	sess, ok := s.session(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "not_found", "detail": "unknown session " + id})
		return
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.evicted {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "not_found", "detail": "session " + id + " was evicted"})
		return
	}
	s.touch(sess)
	writeJSON(w, http.StatusOK, sess.status(true))
}

// handleRelease deletes a session (client-driven teardown; not counted as
// an eviction — the work completed).
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.smu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.smu.Unlock()
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{
			"error": "not_found", "detail": "unknown session " + id})
		return
	}
	sess.mu.Lock()
	sess.evicted = true
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"released": true, "session": id})
}

// recordEvidence folds one guarded run's per-bin profiles into the
// matrix's profile record (GET /v1/profiles) and the retrain service's
// evidence feed — shared by the stateless SpMV path, session executions,
// and the batch coalescer's flush (which passes the fused launch's width
// so the online loop learns B-dependent labels).
func (s *Server) recordEvidence(e *matrixEntry, p *plan.TuningPlan, traceID string, rep *core.ExecReport, degraded bool, width int) {
	if len(rep.Profiles) == 0 {
		return
	}
	s.mu.Lock()
	if _, resident := s.matrices[e.ID]; resident {
		rec := s.profiles[e.ID]
		if rec == nil {
			rec = &profileRecord{}
			s.profiles[e.ID] = rec
		}
		rec.TraceID = traceID
		rec.Degraded = degraded
		rec.Profiles = plan.AppendCappedProfiles(rec.Profiles, rep.Profiles...)
	}
	s.mu.Unlock()
	if s.cfg.Retrain != nil {
		s.cfg.Retrain.Observe(retrain.Observation{
			Fingerprint:  e.Fingerprint,
			ModelVersion: p.ModelVersion,
			A:            e.A,
			Features:     p.Features,
			U:            p.U,
			MaxBins:      p.MaxBins,
			Scheme:       p.Scheme,
			Fallback:     p.Fallback,
			Degraded:     degraded,
			Profiles:     rep.Profiles,
			Width:        width,
		})
	}
}
