package server

import (
	"math"
	"testing"
)

// FuzzHTTPSolve fuzzes the solver-session decoders — both halves of the
// session trust boundary: the create body (solver selection, tolerances,
// start vectors) and the iterate body (step counts, spmv input vectors).
// The invariant mirrors FuzzHTTPSpMV: arbitrary bytes produce either a
// typed error or a request satisfying every documented constraint; never
// a panic.
func FuzzHTTPSolve(f *testing.F) {
	f.Add([]byte(`{"matrix":"abc","solver":"cg","b":[1,2,3]}`))
	f.Add([]byte(`{"matrix":"abc","solver":"gmres","b":[1],"restart":5,"tol":1e-9}`))
	f.Add([]byte(`{"matrix":"abc","solver":"pagerank","damping":0.9,"mode":"run"}`))
	f.Add([]byte(`{"matrix":"abc","solver":"power","x0":[1,0],"maxIterations":50}`))
	f.Add([]byte(`{"matrix":"abc","solver":"spmv"}`))
	f.Add([]byte(`{"matrix":"abc","solver":"spmv","mode":"run"}`))
	f.Add([]byte(`{"matrix":"","solver":"cg","b":[1]}`))
	f.Add([]byte(`{"matrix":"x","solver":"cg","b":[1],"tol":-1}`))
	f.Add([]byte(`{"matrix":"x","solver":"jacobi","b":[1],"damping":0.5}`))
	f.Add([]byte(`{"matrix":"x","solver":"nosuch","b":[1]}`))
	f.Add([]byte(`{"steps":3}`))
	f.Add([]byte(`{"steps":-1}`))
	f.Add([]byte(`{"steps":100000}`))
	f.Add([]byte(`{"vector":[1,2],"timeoutMs":50}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`[]`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := decodeSolveRequest(data); err == nil {
			if req.Matrix == "" {
				t.Fatal("accepted solve without matrix id")
			}
			switch req.Solver {
			case solverCG, solverJacobi, solverGMRES, solverPageRank, solverPower, solverSpMV:
			default:
				t.Fatalf("accepted unknown solver %q", req.Solver)
			}
			if req.Mode != "session" && req.Mode != "run" {
				t.Fatalf("normalized mode is %q", req.Mode)
			}
			if req.Mode == "run" && req.Solver == solverSpMV {
				t.Fatal("accepted run mode for spmv")
			}
			if !(req.Tol > 0) || math.IsInf(req.Tol, 0) {
				t.Fatalf("normalized tol %g not positive finite", req.Tol)
			}
			if req.MaxIterations < 1 || req.MaxIterations > maxMaxIterations {
				t.Fatalf("normalized maxIterations %d out of bounds", req.MaxIterations)
			}
			if req.Restart < 0 || req.Restart > maxGMRESRestart {
				t.Fatalf("restart %d out of bounds", req.Restart)
			}
			if !(req.Damping > 0 && req.Damping <= 1) {
				t.Fatalf("normalized damping %g outside (0,1]", req.Damping)
			}
			if req.TimeoutMs < 0 {
				t.Fatal("accepted negative timeout")
			}
			if linearSolver(req.Solver) != (len(req.B) > 0) {
				t.Fatalf("solver %q with b length %d", req.Solver, len(req.B))
			}
			for _, x := range append(append([]float64(nil), req.B...), req.X0...) {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatal("accepted non-finite value")
				}
			}
		} else if err != nil {
			_ = err.Error() // typed, formattable, never a panic
		}

		if req, err := decodeIterateRequest(data); err == nil {
			if req.Steps < 1 || req.Steps > maxStepsPerRequest {
				t.Fatalf("normalized steps %d out of bounds", req.Steps)
			}
			if req.TimeoutMs < 0 {
				t.Fatal("accepted negative timeout")
			}
			for _, x := range req.Vector {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					t.Fatal("accepted non-finite vector value")
				}
			}
		}
	})
}
