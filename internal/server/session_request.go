package server

import (
	"encoding/json"
	"math"

	"spmvtune/internal/errdefs"
)

// Session solver identifiers accepted by POST /v1/solve. "spmv" is the
// degenerate solver: the session pins matrix + plan + output scratch and
// each iterate request carries one input vector — the resident-state
// variant of POST /v1/spmv for clients that drive their own iteration.
const (
	solverCG       = "cg"
	solverJacobi   = "jacobi"
	solverGMRES    = "gmres"
	solverPageRank = "pagerank"
	solverPower    = "power"
	solverSpMV     = "spmv"
)

// linearSolver reports whether the solver solves A x = b (and therefore
// requires b at session creation).
func linearSolver(s string) bool {
	return s == solverCG || s == solverJacobi || s == solverGMRES
}

const (
	// defaultTol is the convergence tolerance when the request leaves it 0.
	defaultTol = 1e-8
	// defaultMaxIterations bounds a session's total iteration budget when
	// the request leaves it 0; maxMaxIterations caps what a request may ask
	// for.
	defaultMaxIterations = 1000
	maxMaxIterations     = 1_000_000
	// maxStepsPerRequest caps one iterate call — a long solve is many
	// bounded requests, each individually cancellable, never one unbounded
	// handler.
	maxStepsPerRequest = 10_000
	// maxGMRESRestart caps the Krylov workspace one session may pin
	// (restart+1 basis vectors of matrix dimension each).
	maxGMRESRestart = 1000
)

// SolveRequest is the body of POST /v1/solve: create a resident solver
// session (mode "session", the default) or run a whole server-driven solve
// with convergence streamed back as JSONL (mode "run").
type SolveRequest struct {
	// Matrix is the ID returned by POST /v1/matrices.
	Matrix string `json:"matrix"`
	// Solver is one of cg, jacobi, gmres, pagerank, power, spmv.
	Solver string `json:"solver"`
	// Mode selects "session" (default: create, iterate via follow-up
	// requests) or "run" (server iterates to convergence, streaming one
	// JSONL progress line per iteration). "run" is not valid for spmv.
	Mode string `json:"mode,omitempty"`
	// B is the right-hand side for the linear solvers (cg/jacobi/gmres);
	// forbidden for the others.
	B []float64 `json:"b,omitempty"`
	// X0 is the optional start vector: initial guess for the linear
	// solvers (default zeros), start iterate for power (default all-ones)
	// and pagerank (default uniform). Forbidden for spmv.
	X0 []float64 `json:"x0,omitempty"`
	// Tol is the convergence tolerance; 0 selects 1e-8.
	Tol float64 `json:"tol,omitempty"`
	// MaxIterations is the session's total iteration budget; 0 selects
	// 1000. Ignored by spmv sessions (each product is client-driven).
	MaxIterations int `json:"maxIterations,omitempty"`
	// Restart is the GMRES restart length; 0 selects min(n, 30). Only
	// meaningful for gmres.
	Restart int `json:"restart,omitempty"`
	// Damping is the PageRank damping factor in (0,1]; 0 selects 0.85.
	// Only meaningful for pagerank.
	Damping float64 `json:"damping,omitempty"`
	// TimeoutMs caps this request's execution time (the create's tuning
	// pass, or the whole solve in run mode); 0 uses the server default.
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// TraceID tags the session's pipeline spans; empty selects a generated
	// ID when tracing is enabled.
	TraceID string `json:"traceId,omitempty"`
}

// IterateRequest is the body of POST /v1/solve/{id}/iterate: advance the
// session. The body is deliberately tiny — the matrix, plan, right-hand
// side and solver state are all resident server-side; a 100-iteration CG
// solve re-uploads nothing.
type IterateRequest struct {
	// Steps is how many iterations to advance (clamped to the session's
	// remaining budget); 0 selects 1, the maximum per request is 10000.
	Steps int `json:"steps,omitempty"`
	// Vector is the input vector for spmv sessions (required there,
	// forbidden for solver sessions).
	Vector []float64 `json:"vector,omitempty"`
	// TimeoutMs caps this request's execution time; 0 uses the server
	// default.
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

func checkFiniteVec(name string, v []float64) error {
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return errdefs.Invalidf("server: %s has non-finite value at %d", name, i)
		}
	}
	return nil
}

// decodeSolveRequest parses and validates a solve-session creation body.
// Untrusted network input: every rejection is a typed invalid-input error
// (HTTP 400), never a panic — this is half of the FuzzHTTPSolve surface.
// Dimension checks against the target matrix happen in the handler once
// the matrix is resolved.
func decodeSolveRequest(data []byte) (*SolveRequest, error) {
	var req SolveRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, errdefs.Invalidf("server: bad request body: %v", err)
	}
	if req.Matrix == "" {
		return nil, errdefs.Invalidf("server: missing matrix id")
	}
	switch req.Solver {
	case solverCG, solverJacobi, solverGMRES, solverPageRank, solverPower, solverSpMV:
	case "":
		return nil, errdefs.Invalidf("server: missing solver")
	default:
		return nil, errdefs.Invalidf("server: unknown solver %q", req.Solver)
	}
	switch req.Mode {
	case "":
		req.Mode = "session"
	case "session":
	case "run":
		if req.Solver == solverSpMV {
			return nil, errdefs.Invalidf("server: mode run is not valid for spmv sessions")
		}
	default:
		return nil, errdefs.Invalidf("server: unknown mode %q", req.Mode)
	}
	if math.IsNaN(req.Tol) || math.IsInf(req.Tol, 0) || req.Tol < 0 {
		return nil, errdefs.Invalidf("server: tol must be a finite non-negative number")
	}
	if req.Tol == 0 {
		req.Tol = defaultTol
	}
	if req.MaxIterations < 0 || req.MaxIterations > maxMaxIterations {
		return nil, errdefs.Invalidf("server: maxIterations %d outside [0, %d]", req.MaxIterations, maxMaxIterations)
	}
	if req.MaxIterations == 0 {
		req.MaxIterations = defaultMaxIterations
	}
	if req.Restart < 0 || req.Restart > maxGMRESRestart {
		return nil, errdefs.Invalidf("server: restart %d outside [0, %d]", req.Restart, maxGMRESRestart)
	}
	if req.Restart != 0 && req.Solver != solverGMRES {
		return nil, errdefs.Invalidf("server: restart is only valid for gmres")
	}
	if math.IsNaN(req.Damping) || req.Damping < 0 || req.Damping > 1 {
		return nil, errdefs.Invalidf("server: damping must be in (0,1]")
	}
	if req.Damping != 0 && req.Solver != solverPageRank {
		return nil, errdefs.Invalidf("server: damping is only valid for pagerank")
	}
	if req.Damping == 0 {
		req.Damping = 0.85
	}
	if req.TimeoutMs < 0 {
		return nil, errdefs.Invalidf("server: negative timeoutMs %d", req.TimeoutMs)
	}
	if len(req.TraceID) > 128 {
		return nil, errdefs.Invalidf("server: traceId longer than 128 bytes")
	}
	if linearSolver(req.Solver) {
		if len(req.B) == 0 {
			return nil, errdefs.Invalidf("server: solver %s requires b", req.Solver)
		}
	} else if len(req.B) > 0 {
		return nil, errdefs.Invalidf("server: solver %s does not take b", req.Solver)
	}
	if req.Solver == solverSpMV && len(req.X0) > 0 {
		return nil, errdefs.Invalidf("server: solver spmv does not take x0")
	}
	if err := checkFiniteVec("b", req.B); err != nil {
		return nil, err
	}
	if err := checkFiniteVec("x0", req.X0); err != nil {
		return nil, err
	}
	return &req, nil
}

// decodeIterateRequest parses and validates an iterate body — the other
// half of the FuzzHTTPSolve surface. Whether Vector is required or
// forbidden depends on the session's solver, which the handler checks.
func decodeIterateRequest(data []byte) (*IterateRequest, error) {
	req := IterateRequest{Steps: 1}
	if len(data) > 0 {
		if err := json.Unmarshal(data, &req); err != nil {
			return nil, errdefs.Invalidf("server: bad request body: %v", err)
		}
	}
	if req.Steps == 0 {
		req.Steps = 1
	}
	if req.Steps < 0 || req.Steps > maxStepsPerRequest {
		return nil, errdefs.Invalidf("server: steps %d outside [1, %d]", req.Steps, maxStepsPerRequest)
	}
	if req.TimeoutMs < 0 {
		return nil, errdefs.Invalidf("server: negative timeoutMs %d", req.TimeoutMs)
	}
	if err := checkFiniteVec("vector", req.Vector); err != nil {
		return nil, err
	}
	return &req, nil
}
