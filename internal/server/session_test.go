package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spmvtune/internal/sparse"
)

// spdBanded builds a strictly diagonally dominant symmetric band matrix —
// SPD, so CG and Jacobi both converge on it.
func spdBanded(t *testing.T, n, band int) *sparse.CSR {
	t.Helper()
	coo := &sparse.COO{Rows: n, Cols: n}
	half := band / 2
	for i := 0; i < n; i++ {
		for d := -half; d <= half; d++ {
			j := i + d
			if j < 0 || j >= n {
				continue
			}
			if d == 0 {
				coo.Add(i, j, float64(band)+1)
			} else {
				coo.Add(i, j, -1)
			}
		}
	}
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func doJSON(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, blob
}

func createSession(t *testing.T, ts *httptest.Server, body string) (string, sessionStatus) {
	t.Helper()
	resp, blob := doJSON(t, http.MethodPost, ts.URL+"/v1/solve", body)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("solve status %d: %s", resp.StatusCode, blob)
	}
	var st sessionStatus
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	if st.Session == "" {
		t.Fatalf("create response carries no session id: %s", blob)
	}
	return st.Session, st
}

func iterate(t *testing.T, ts *httptest.Server, id, body string) (int, sessionStatus) {
	t.Helper()
	resp, blob := doJSON(t, http.MethodPost, ts.URL+"/v1/solve/"+id+"/iterate", body)
	var st sessionStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(blob, &st); err != nil {
			t.Fatalf("iterate body %s: %v", blob, err)
		}
	}
	return resp.StatusCode, st
}

func floatsJSON(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%g", x)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// TestSolveSessionCG100Iterations is the PR's acceptance criterion: a
// 100-iteration CG solve through /v1/solve pays exactly one tuning pass
// (plan-cache misses and tune count both 1) and re-uploads nothing per
// iteration — every iterate request body is a few bytes, carrying neither
// matrix nor vectors.
func TestSolveSessionCG100Iterations(t *testing.T) {
	_, ts := newTestServer(t, nil)
	a := spdBanded(t, 200, 5)
	id := uploadMatrix(t, ts, a)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}

	// An unreachable tolerance forces the full 100-iteration budget.
	sid, created := createSession(t, ts, fmt.Sprintf(
		`{"matrix":%q,"solver":"cg","b":%s,"tol":1e-300,"maxIterations":100}`, id, floatsJSON(b)))
	if created.CacheHit {
		t.Fatal("create hit the plan cache — expected this session to pay the tuning pass")
	}
	if created.Iterations != 0 || created.Done {
		t.Fatalf("fresh session state: %+v", created)
	}

	var last sessionStatus
	for k := 0; k < 10; k++ {
		body := `{"steps":10}`
		if len(body) >= 64 {
			t.Fatalf("iterate payload is %d bytes — the session is supposed to make iterations cheap", len(body))
		}
		code, st := iterate(t, ts, sid, body)
		if code != http.StatusOK {
			t.Fatalf("iterate %d: status %d", k, code)
		}
		if st.Iterations != (k+1)*10 {
			t.Fatalf("after batch %d: %d iterations, want %d", k, st.Iterations, (k+1)*10)
		}
		last = st
	}
	if !last.Done || last.Converged {
		t.Fatalf("after 100 iterations: done=%v converged=%v (tol was unreachable)", last.Done, last.Converged)
	}
	if len(last.X) != a.Rows {
		t.Fatalf("final response carries no solution (len %d)", len(last.X))
	}

	// Exactly one tuning pass for the whole 100-iteration solve.
	if misses := scrapeMetric(t, ts, "spmvd_plan_cache_misses"); misses != 1 {
		t.Errorf("plan cache misses = %d, want exactly 1", misses)
	}
	if tunes := scrapeMetric(t, ts, "spmvd_tune_seconds_count"); tunes != 1 {
		t.Errorf("tuning passes = %d, want exactly 1", tunes)
	}
	if iters := scrapeMetric(t, ts, "spmvd_session_iterations_total"); iters != 100 {
		t.Errorf("spmvd_session_iterations_total = %d, want 100", iters)
	}
	if retunes := scrapeMetric(t, ts, "spmvd_session_retunes_total"); retunes != 0 {
		t.Errorf("spmvd_session_retunes_total = %d, want 0 (no model swap happened)", retunes)
	}
	if active := scrapeMetric(t, ts, "spmvd_sessions_active"); active != 1 {
		t.Errorf("spmvd_sessions_active = %d, want 1", active)
	}
}

// TestSolveSessionCGConverges: with a reachable tolerance the session
// converges and the returned solution actually solves the system.
func TestSolveSessionCGConverges(t *testing.T) {
	_, ts := newTestServer(t, nil)
	a := spdBanded(t, 150, 5)
	id := uploadMatrix(t, ts, a)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = float64(i%7) + 1
	}
	sid, _ := createSession(t, ts, fmt.Sprintf(
		`{"matrix":%q,"solver":"cg","b":%s,"tol":1e-10,"maxIterations":500}`, id, floatsJSON(b)))

	var st sessionStatus
	for k := 0; k < 50; k++ {
		var code int
		code, st = iterate(t, ts, sid, `{"steps":20}`)
		if code != http.StatusOK {
			t.Fatalf("iterate: status %d", code)
		}
		if st.Done {
			break
		}
	}
	if !st.Converged {
		t.Fatalf("did not converge: %+v", st)
	}
	// Check the solution against the matrix directly.
	r := make([]float64, a.Rows)
	a.MulVec(st.X, r)
	var rn, bn float64
	for i := range r {
		d := b[i] - r[i]
		rn += d * d
		bn += b[i] * b[i]
	}
	if rel := math.Sqrt(rn / bn); rel > 1e-8 {
		t.Errorf("returned x has relative residual %g", rel)
	}
	// Iterating a done session is an idempotent no-op.
	iters := st.Iterations
	code, again := iterate(t, ts, sid, `{"steps":5}`)
	if code != http.StatusOK || again.Iterations != iters || !again.Done {
		t.Errorf("post-convergence iterate: code %d, %+v", code, again)
	}
}

// TestSolveRunModeStreamsJSONL: mode "run" drives the whole solve
// server-side, streaming one JSONL progress line per iteration and a
// final line carrying the solution.
func TestSolveRunModeStreamsJSONL(t *testing.T) {
	_, ts := newTestServer(t, nil)
	a := spdBanded(t, 100, 5)
	id := uploadMatrix(t, ts, a)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(fmt.Sprintf(
		`{"matrix":%q,"solver":"cg","b":%s,"tol":1e-10,"maxIterations":500,"mode":"run"}`, id, floatsJSON(b))))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(resp.Body)
		t.Fatalf("run status %d: %s", resp.StatusCode, blob)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 3 {
		t.Fatalf("stream has %d lines, want at least progress + final", len(lines))
	}
	// Progress lines: iter strictly increasing, residual finite.
	prev := 0
	for _, line := range lines[:len(lines)-1] {
		var p struct {
			Iter     int     `json:"iter"`
			Residual float64 `json:"residual"`
		}
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("bad progress line %q: %v", line, err)
		}
		if p.Iter != prev+1 || math.IsNaN(p.Residual) {
			t.Fatalf("progress line %q after iter %d", line, prev)
		}
		prev = p.Iter
	}
	var final sessionStatus
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatalf("bad final line: %v", err)
	}
	if !final.Done || !final.Converged || len(final.X) != a.Rows {
		t.Fatalf("final line: done=%v converged=%v len(x)=%d", final.Done, final.Converged, len(final.X))
	}
	// Run mode leaves nothing resident.
	if active := scrapeMetric(t, ts, "spmvd_sessions_active"); active != 0 {
		t.Errorf("run mode left %d sessions resident", active)
	}
}

// TestSpMVSessionResidentScratch: an spmv session answers per-iterate
// products against the pinned plan, and its results match the matrix.
func TestSpMVSessionResidentScratch(t *testing.T) {
	_, ts := newTestServer(t, nil)
	a := spdBanded(t, 120, 3)
	id := uploadMatrix(t, ts, a)
	sid, _ := createSession(t, ts, fmt.Sprintf(`{"matrix":%q,"solver":"spmv"}`, id))

	v := make([]float64, a.Cols)
	for i := range v {
		v[i] = float64(i % 5)
	}
	code, st := iterate(t, ts, sid, fmt.Sprintf(`{"vector":%s}`, floatsJSON(v)))
	if code != http.StatusOK {
		t.Fatalf("iterate status %d", code)
	}
	want := make([]float64, a.Rows)
	a.MulVec(v, want)
	if len(st.Result) != len(want) {
		t.Fatalf("result length %d", len(st.Result))
	}
	for i := range want {
		if math.Abs(st.Result[i]-want[i]) > 1e-9*math.Max(1, math.Abs(want[i])) {
			t.Fatalf("result[%d] = %g, want %g", i, st.Result[i], want[i])
		}
	}
	// A vector-less iterate on an spmv session is a client error.
	if code, _ := iterate(t, ts, sid, `{}`); code != http.StatusBadRequest {
		t.Errorf("vector-less spmv iterate: status %d, want 400", code)
	}
}

// TestSessionLifecycle: GET reports status, DELETE releases, and both 404
// afterwards; a released session is not an eviction.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, nil)
	a := spdBanded(t, 80, 3)
	id := uploadMatrix(t, ts, a)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	sid, _ := createSession(t, ts, fmt.Sprintf(`{"matrix":%q,"solver":"cg","b":%s}`, id, floatsJSON(b)))

	if _, st := iterate(t, ts, sid, `{"steps":3}`); st.Iterations != 3 {
		t.Fatalf("iterations %d, want 3", st.Iterations)
	}
	resp, blob := doJSON(t, http.MethodGet, ts.URL+"/v1/solve/"+sid, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
	var st sessionStatus
	if err := json.Unmarshal(blob, &st); err != nil {
		t.Fatal(err)
	}
	if st.Iterations != 3 || len(st.X) != a.Rows || st.Solver != "cg" {
		t.Fatalf("GET state: %+v", st)
	}

	if resp, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/solve/"+sid, ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	if resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/solve/"+sid, ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after release: status %d, want 404", resp.StatusCode)
	}
	if code, _ := iterate(t, ts, sid, `{}`); code != http.StatusNotFound {
		t.Fatalf("iterate after release: status %d, want 404", code)
	}
	if ev := scrapeMetric(t, ts, "spmvd_session_evictions_total"); ev != 0 {
		t.Errorf("client release counted as eviction: %d", ev)
	}
}

// TestSessionBreakdownIs422: CG on a non-SPD matrix breaks down; the
// session reports a well-formed 422 with class "breakdown" and stays
// broken (sticky) rather than pretending to continue.
func TestSessionBreakdownIs422(t *testing.T) {
	_, ts := newTestServer(t, nil)
	// Symmetric indefinite: off-diagonal dominance makes p^T A p go
	// negative almost immediately.
	coo := &sparse.COO{Rows: 32, Cols: 32}
	for i := 0; i < 32; i++ {
		coo.Add(i, i, -2)
		if i+1 < 32 {
			coo.Add(i, i+1, 1)
			coo.Add(i+1, i, 1)
		}
	}
	a, err := coo.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	id := uploadMatrix(t, ts, a)
	b := make([]float64, 32)
	for i := range b {
		b[i] = 1
	}
	sid, _ := createSession(t, ts, fmt.Sprintf(`{"matrix":%q,"solver":"cg","b":%s}`, id, floatsJSON(b)))
	code, blob := doJSON(t, http.MethodPost, ts.URL+"/v1/solve/"+sid+"/iterate", `{"steps":10}`)
	if code.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("breakdown status %d: %s", code.StatusCode, blob)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(blob, &e); err != nil || e.Error != "breakdown" {
		t.Fatalf("breakdown body %s", blob)
	}
	// Sticky: the next iterate reports the same breakdown.
	if code, _ := iterate(t, ts, sid, `{}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("second iterate after breakdown: status %d, want 422", code)
	}
}

// TestSessionCapacityEvictsOldestIdle: at MaxSessions, creating one more
// evicts the oldest idle session (visible as a 404 on its next use and on
// the eviction counter).
func TestSessionCapacityEvictsOldestIdle(t *testing.T) {
	clock := &fakeClock{}
	_, ts := newTestServer(t, func(c *Config) {
		c.MaxSessions = 2
		c.Clock = clock.now
	})
	a := spdBanded(t, 60, 3)
	id := uploadMatrix(t, ts, a)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	mk := func() string {
		sid, _ := createSession(t, ts, fmt.Sprintf(`{"matrix":%q,"solver":"cg","b":%s}`, id, floatsJSON(b)))
		return sid
	}
	s1 := mk()
	clock.advance(time.Second)
	s2 := mk()
	clock.advance(time.Second)
	s3 := mk() // capacity 2: evicts s1, the oldest idle

	if code, _ := iterate(t, ts, s1, `{}`); code != http.StatusNotFound {
		t.Fatalf("evicted session s1 answers %d, want 404", code)
	}
	for _, sid := range []string{s2, s3} {
		if code, _ := iterate(t, ts, sid, `{}`); code != http.StatusOK {
			t.Fatalf("surviving session %s answers %d", sid, code)
		}
	}
	if ev := scrapeMetric(t, ts, "spmvd_session_evictions_total"); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

// TestSessionDrain: after Drain, idle sessions are evicted and new
// creates are refused with 503, while stateless endpoints keep serving.
func TestSessionDrain(t *testing.T) {
	srv, ts := newTestServer(t, nil)
	a := spdBanded(t, 60, 3)
	id := uploadMatrix(t, ts, a)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	createSession(t, ts, fmt.Sprintf(`{"matrix":%q,"solver":"cg","b":%s}`, id, floatsJSON(b)))
	if _, err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	if active := scrapeMetric(t, ts, "spmvd_sessions_active"); active != 0 {
		t.Fatalf("drain left %d sessions", active)
	}
	if ev := scrapeMetric(t, ts, "spmvd_session_evictions_total"); ev != 1 {
		t.Errorf("drain evictions = %d, want 1", ev)
	}
	resp, blob := doJSON(t, http.MethodPost, ts.URL+"/v1/solve",
		fmt.Sprintf(`{"matrix":%q,"solver":"cg","b":%s}`, id, floatsJSON(b)))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create while draining: status %d: %s", resp.StatusCode, blob)
	}
}

// TestSessionTTLEvictionStress races creates, iterates, status reads,
// releases and TTL sweeps (driven by a manual clock) against each other.
// Invariants: every response is one of the documented statuses, nothing
// panics, and once the clock has advanced past the TTL with no traffic,
// a sweep leaves zero resident sessions. The "Stress" suffix opts this
// test into the CI race-stress job.
func TestSessionTTLEvictionStress(t *testing.T) {
	clock := &fakeClock{}
	_, ts := newTestServer(t, func(c *Config) {
		c.MaxSessions = 8
		c.SessionTTL = 50 * time.Millisecond
		c.Clock = clock.now
	})
	a := spdBanded(t, 60, 3)
	id := uploadMatrix(t, ts, a)
	b := make([]float64, a.Rows)
	for i := range b {
		b[i] = 1
	}
	createBody := fmt.Sprintf(`{"matrix":%q,"solver":"cg","b":%s,"tol":1e-300,"maxIterations":100000}`, id, floatsJSON(b))

	// Warm the plan cache so the workers contend on sessions, not tuning.
	createSession(t, ts, createBody)

	var wg sync.WaitGroup
	var mu sync.Mutex
	ids := []string{}
	addID := func(sid string) {
		mu.Lock()
		ids = append(ids, sid)
		mu.Unlock()
	}
	randID := func(i int) string {
		mu.Lock()
		defer mu.Unlock()
		if len(ids) == 0 {
			return "sv-none"
		}
		return ids[i%len(ids)]
	}
	allowed := map[int]bool{
		http.StatusOK: true, http.StatusCreated: true,
		http.StatusNotFound: true, http.StatusConflict: true,
		http.StatusTooManyRequests: true,
	}
	check := func(op string, code int) {
		if !allowed[code] {
			t.Errorf("%s: unexpected status %d", op, code)
		}
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch (w + i) % 4 {
				case 0:
					resp, blob := doJSON(t, http.MethodPost, ts.URL+"/v1/solve", createBody)
					check("create", resp.StatusCode)
					if resp.StatusCode == http.StatusCreated {
						var st sessionStatus
						if json.Unmarshal(blob, &st) == nil {
							addID(st.Session)
						}
					}
				case 1:
					resp, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/solve/"+randID(i)+"/iterate", `{"steps":2}`)
					check("iterate", resp.StatusCode)
				case 2:
					resp, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/solve/"+randID(i), "")
					check("get", resp.StatusCode)
				case 3:
					resp, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/solve/"+randID(i), "")
					check("delete", resp.StatusCode)
				}
				if i%5 == 0 {
					clock.advance(20 * time.Millisecond)
				}
			}
		}(w)
	}
	wg.Wait()

	// Quiesce: everything still resident is now idle; advancing past the
	// TTL and touching any session endpoint sweeps them all.
	clock.advance(time.Second)
	doJSON(t, http.MethodGet, ts.URL+"/v1/solve/sv-none", "")
	if active := scrapeMetric(t, ts, "spmvd_sessions_active"); active != 0 {
		t.Errorf("after TTL quiesce: %d sessions still resident", active)
	}
}
