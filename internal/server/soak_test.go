package server

import (
	"fmt"
	"sync"
	"testing"

	"spmvtune/internal/c50"
	"spmvtune/internal/core"
	"spmvtune/internal/matgen"
)

// TestSolverSoakHotSwap is the CI solver-soak gate: concurrent solver
// sessions iterate (under -race in CI) while a retrain hot-swap fires
// mid-traffic. It proves the session layer composes with PR 7's model
// rollouts:
//
//   - no torn plan reads: every response reports a plan belonging to
//     exactly one model (the bad incumbent or the promoted one), and each
//     session's observed model version transitions monotonically — once a
//     session has seen the new model it never reports the old one;
//   - the swap lands at an iteration boundary: iterations never fail or
//     restart, they just continue under the new plan;
//   - exactly-once re-tune: each session pays exactly one boundary re-pin
//     (retunes == 1), and the actual tuning work is one pass per distinct
//     matrix, however many sessions share it (the plan cache's
//     singleflight) — asserted on spmvd_tune_seconds_count.
func TestSolverSoakHotSwap(t *testing.T) {
	cfg := retrainCoreConfig()
	mBad := serialIncumbent(t, cfg)
	td := core.NewTrainingData(cfg)
	td.AddMatrix(cfg, matgen.RoadNetwork(600, 1))
	td.AddMatrix(cfg, matgen.BlockFEM(80, 150, 30, 2))
	mGood := core.TrainModel(td, cfg, c50.DefaultOptions())
	vBad, vGood := core.ModelVersion(mBad), core.ModelVersion(mGood)
	if vBad == vGood {
		t.Fatal("test models share a version")
	}

	fw := core.NewFramework(cfg, mBad)
	srv, ts := newTestServer(t, func(c *Config) { c.Framework = fw })

	// Two distinct SPD structures, two sessions each.
	mats := []struct{ n, band int }{{150, 5}, {200, 7}}
	ids := make([]string, len(mats))
	bodies := make([]string, len(mats))
	for i, m := range mats {
		a := spdBanded(t, m.n, m.band)
		ids[i] = uploadMatrix(t, ts, a)
		b := make([]float64, a.Rows)
		for j := range b {
			b[j] = 1
		}
		// Unreachable tolerance: sessions iterate for as long as the soak
		// drives them, never converging out from under the assertions.
		bodies[i] = fmt.Sprintf(`{"matrix":%q,"solver":"cg","b":%s,"tol":1e-300,"maxIterations":100000}`,
			ids[i], floatsJSON(b))
	}
	const sessionsPerMatrix = 2
	const itersPerPhase = 12
	var sids []string
	for i := range mats {
		for k := 0; k < sessionsPerMatrix; k++ {
			sid, st := createSession(t, ts, bodies[i])
			if st.ModelVersion != vBad {
				t.Fatalf("session created under version %q, want incumbent %q", st.ModelVersion, vBad)
			}
			sids = append(sids, sid)
		}
	}
	tunesAfterCreate := scrapeMetric(t, ts, "spmvd_tune_seconds_count")

	// Each worker drives one session. After itersPerPhase iterations it
	// signals readiness and keeps iterating; main fires the hot-swap while
	// all workers are mid-traffic, so swap and iterates genuinely race.
	type obs struct {
		versions []string
		retunes  int64
		err      string
	}
	results := make([]obs, len(sids))
	ready := make(chan struct{}, len(sids))
	swapped := make(chan struct{})
	var wg sync.WaitGroup
	for w, sid := range sids {
		wg.Add(1)
		go func(w int, sid string) {
			defer wg.Done()
			o := &results[w]
			signaled := false
			for i := 0; i < 2*itersPerPhase; i++ {
				code, st := iterate(t, ts, sid, `{"steps":1}`)
				if code != 200 {
					o.err = fmt.Sprintf("iterate %d: status %d", i, code)
					return
				}
				o.versions = append(o.versions, st.ModelVersion)
				o.retunes = st.Retunes
				if i+1 == itersPerPhase {
					signaled = true
					ready <- struct{}{}
					<-swapped // swap is in flight (or done) from here on
				}
			}
			if !signaled {
				o.err = "never reached the swap barrier"
			}
		}(w, sid)
	}
	for range sids {
		<-ready
	}
	srv.AdoptModel(mGood, vGood)
	close(swapped)
	wg.Wait()

	for w, o := range results {
		if o.err != "" {
			t.Fatalf("session %d: %s", w, o.err)
		}
		// Monotonic version transition: a prefix of vBad, then vGood — any
		// other value or a flip back would be a torn or stale plan read.
		seenGood := false
		for i, v := range o.versions {
			switch v {
			case vBad:
				if seenGood {
					t.Fatalf("session %d: version regressed to the old model at iterate %d: %v", w, i, o.versions)
				}
			case vGood:
				seenGood = true
			default:
				t.Fatalf("session %d: iterate %d reports version %q, belonging to neither model", w, i, v)
			}
		}
		if !seenGood {
			t.Fatalf("session %d never picked up the promoted model: %v", w, o.versions)
		}
		// Exactly one boundary re-pin per session for one rollout.
		if o.retunes != 1 {
			t.Fatalf("session %d: retunes = %d, want exactly 1", w, o.retunes)
		}
	}
	// Exactly-once re-tune per distinct matrix across all sessions: the
	// boundary re-pins funnel through the plan cache's singleflight.
	if delta := scrapeMetric(t, ts, "spmvd_tune_seconds_count") - tunesAfterCreate; delta != int64(len(mats)) {
		t.Fatalf("hot-swap re-tuned %d times, want exactly %d (one per matrix)", delta, len(mats))
	}
	if retunes := scrapeMetric(t, ts, "spmvd_session_retunes_total"); retunes != int64(len(sids)) {
		t.Fatalf("spmvd_session_retunes_total = %d, want %d", retunes, len(sids))
	}
}
