package solvers

import (
	"context"
	"errors"
	"testing"

	"spmvtune/internal/errdefs"
)

// cancelAfter returns a context plus an SpMV wrapper that cancels it after
// n products — cancellation mid-solve, the hard case.
func cancelAfter(mul SpMV, n int) (context.Context, SpMV) {
	ctx, cancel := context.WithCancel(context.Background())
	count := 0
	return ctx, func(v, u []float64) {
		mul(v, u)
		count++
		if count >= n {
			cancel()
		}
	}
}

func TestSolversHonorCancellation(t *testing.T) {
	// Strictly diagonally dominant SPD system: every solver converges on it,
	// so a cancellation error cannot be confused with a breakdown. One
	// boosted diagonal entry separates the dominant eigenvalue so power
	// iteration converges quickly too (still symmetric and dominant).
	a, b, _ := spdSystem(200, 5, 1)
	_, vals := a.Row(0)
	vals[0] = 100

	type solve func(ctx context.Context, mul SpMV) error
	cases := []struct {
		name string
		run  solve
	}{
		{"CG", func(ctx context.Context, mul SpMV) error {
			_, err := CGCtx(ctx, mul, b, make([]float64, a.Rows), 1e-8, 1000)
			return err
		}},
		{"BiCGSTAB", func(ctx context.Context, mul SpMV) error {
			_, err := BiCGSTABCtx(ctx, mul, b, make([]float64, a.Rows), 1e-8, 1000)
			return err
		}},
		{"GMRES", func(ctx context.Context, mul SpMV) error {
			_, err := GMRESCtx(ctx, mul, b, make([]float64, a.Rows), 1e-8, 10, 1000)
			return err
		}},
		{"Jacobi", func(ctx context.Context, mul SpMV) error {
			_, err := JacobiCtx(ctx, a, mul, b, make([]float64, a.Rows), 1e-8, 1000)
			return err
		}},
		{"PowerIteration", func(ctx context.Context, mul SpMV) error {
			x := make([]float64, a.Rows)
			x[0] = 1
			_, _, err := PowerIterationCtx(ctx, mul, x, 1e-9, 2000)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name+"/pre-canceled", func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			err := tc.run(ctx, Default(a))
			if !errors.Is(err, errdefs.ErrCanceled) || !errors.Is(err, context.Canceled) {
				t.Errorf("error %v does not match cancellation sentinels", err)
			}
		})
		t.Run(tc.name+"/mid-solve", func(t *testing.T) {
			ctx, mul := cancelAfter(Default(a), 2)
			err := tc.run(ctx, mul)
			if !errors.Is(err, errdefs.ErrCanceled) {
				t.Errorf("error %v, want cancellation (solver ignored mid-solve cancel?)", err)
			}
		})
		t.Run(tc.name+"/nil-ctx-converges", func(t *testing.T) {
			if err := tc.run(nil, Default(a)); err != nil {
				t.Errorf("nil context broke the solve: %v", err)
			}
		})
	}
}
