package solvers

import (
	"context"
	"fmt"
	"math"
)

// GMRES solves A x = b for general square A with restarted GMRES(m):
// Arnoldi builds an orthonormal Krylov basis of dimension up to restart,
// Givens rotations triangularize the Hessenberg matrix incrementally, and
// the least-squares update is applied at each restart. restart <= 0 picks
// min(n, 30).
func GMRES(mul SpMV, b, x []float64, tol float64, restart, maxIter int) (Result, error) {
	return GMRESCtx(context.Background(), mul, b, x, tol, restart, maxIter)
}

// GMRESCtx is GMRES under a context: cancellation is checked once per
// Arnoldi step (one SpMV each) and the solve returns early with an error
// matching errdefs.ErrCanceled; x keeps the last restart's update.
func GMRESCtx(ctx context.Context, mul SpMV, b, x []float64, tol float64, restart, maxIter int) (Result, error) {
	n := len(b)
	if restart <= 0 {
		restart = 30
	}
	if restart > n {
		restart = n
	}
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	bNorm := norm2(b)
	if bNorm == 0 {
		bNorm = 1
	}

	r := make([]float64, n)
	w := make([]float64, n)
	// Krylov basis vectors.
	v := make([][]float64, restart+1)
	for i := range v {
		v[i] = make([]float64, n)
	}
	// Hessenberg (column-major: h[j] holds column j, length j+2).
	h := make([][]float64, restart)
	cs := make([]float64, restart)
	sn := make([]float64, restart)
	g := make([]float64, restart+1)
	y := make([]float64, restart)

	res := Result{}
	for res.Iterations < maxIter {
		// r = b - A x
		mul(x, r)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		beta := norm2(r)
		res.Residual = beta / bNorm
		if res.Residual <= tol {
			res.Converged = true
			return res, nil
		}
		for i := range r {
			v[0][i] = r[i] / beta
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		j := 0
		for ; j < restart && res.Iterations < maxIter; j++ {
			if err := checkCtx(ctx); err != nil {
				return res, err
			}
			res.Iterations++
			mul(v[j], w)
			// Modified Gram-Schmidt.
			col := make([]float64, j+2)
			for i := 0; i <= j; i++ {
				col[i] = dot(w, v[i])
				for k := range w {
					w[k] -= col[i] * v[i][k]
				}
			}
			col[j+1] = norm2(w)
			if col[j+1] > 1e-300 {
				for k := range w {
					v[j+1][k] = w[k] / col[j+1]
				}
			}
			// Apply accumulated Givens rotations to the new column.
			for i := 0; i < j; i++ {
				col[i], col[i+1] = cs[i]*col[i]+sn[i]*col[i+1], -sn[i]*col[i]+cs[i]*col[i+1]
			}
			// New rotation annihilating col[j+1].
			denom := math.Hypot(col[j], col[j+1])
			if denom < 1e-300 {
				h[j] = col
				j++
				break
			}
			cs[j] = col[j] / denom
			sn[j] = col[j+1] / denom
			col[j] = denom
			col[j+1] = 0
			g[j+1] = -sn[j] * g[j]
			g[j] = cs[j] * g[j]
			h[j] = col

			res.Residual = math.Abs(g[j+1]) / bNorm
			if res.Residual <= tol {
				j++
				break
			}
		}
		// Back-substitute y from the triangularized system.
		for i := j - 1; i >= 0; i-- {
			sum := g[i]
			for k := i + 1; k < j; k++ {
				sum -= h[k][i] * y[k]
			}
			if math.Abs(h[i][i]) < 1e-300 {
				return res, fmt.Errorf("%w: singular Hessenberg diagonal", ErrBreakdown)
			}
			y[i] = sum / h[i][i]
		}
		for i := 0; i < j; i++ {
			for k := range x {
				x[k] += y[i] * v[i][k]
			}
		}
		if res.Residual <= tol {
			res.Converged = true
			return res, nil
		}
	}
	return res, fmt.Errorf("%w after %d iterations (residual %g)", ErrNotConverged, res.Iterations, res.Residual)
}
