package solvers

import (
	"errors"
	"math/rand"
	"testing"

	"spmvtune/internal/sparse"
)

func nonsymSystem(n int, seed int64) (*sparse.CSR, []float64, []float64) {
	coo := &sparse.COO{Rows: n, Cols: n}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		coo.Add(i, i, 6)
		if i+1 < n {
			coo.Add(i, i+1, -1.5)
			coo.Add(i+1, i, -0.5)
		}
		if i+7 < n {
			coo.Add(i, i+7, -0.25)
		}
	}
	a, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	xStar := make([]float64, n)
	for i := range xStar {
		xStar[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(xStar, b)
	return a, b, xStar
}

func TestGMRESSolvesNonsymmetric(t *testing.T) {
	a, b, xStar := nonsymSystem(3000, 1)
	for _, restart := range []int{0, 10, 50} {
		x := make([]float64, len(b))
		res, err := GMRES(Default(a), b, x, 1e-10, restart, 0)
		if err != nil {
			t.Fatalf("restart=%d: %v", restart, err)
		}
		if !res.Converged {
			t.Fatalf("restart=%d: not converged: %+v", restart, res)
		}
		if d := maxAbsDiff(x, xStar); d > 1e-6 {
			t.Errorf("restart=%d: max error %g", restart, d)
		}
	}
}

func TestGMRESAgreesWithBiCGSTAB(t *testing.T) {
	a, b, _ := nonsymSystem(800, 2)
	xg := make([]float64, len(b))
	if _, err := GMRES(Default(a), b, xg, 1e-11, 40, 0); err != nil {
		t.Fatal(err)
	}
	xb := make([]float64, len(b))
	if _, err := BiCGSTAB(Default(a), b, xb, 1e-11, 0); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(xg, xb); d > 1e-6 {
		t.Errorf("solvers disagree by %g", d)
	}
}

func TestGMRESIterationBudget(t *testing.T) {
	a, b, _ := nonsymSystem(500, 3)
	x := make([]float64, len(b))
	_, err := GMRES(Default(a), b, x, 1e-14, 5, 3)
	if !errors.Is(err, ErrNotConverged) {
		t.Errorf("want ErrNotConverged, got %v", err)
	}
}

func TestGMRESZeroRHS(t *testing.T) {
	a, _, _ := nonsymSystem(100, 4)
	b := make([]float64, 100)
	x := make([]float64, 100)
	res, err := GMRES(Default(a), b, x, 1e-12, 10, 0)
	if err != nil || !res.Converged {
		t.Fatalf("zero system: %v %+v", err, res)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("nonzero solution for zero system")
		}
	}
}

func TestGMRESExactAtFullDimension(t *testing.T) {
	// With restart >= n and exact arithmetic GMRES converges within n
	// steps; verify on a tiny well-conditioned system.
	a, b, xStar := nonsymSystem(40, 5)
	x := make([]float64, len(b))
	res, err := GMRES(Default(a), b, x, 1e-12, 40, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 40 {
		t.Errorf("took %d iterations for a 40-dim system", res.Iterations)
	}
	if d := maxAbsDiff(x, xStar); d > 1e-8 {
		t.Errorf("max error %g", d)
	}
}
