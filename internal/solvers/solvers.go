// Package solvers provides the iterative linear solvers that SpMV lives
// inside ("SpMV is an important computational kernel in sparse linear
// system solvers" — the paper's opening sentence): conjugate gradient for
// SPD systems, BiCGSTAB for general square systems, Jacobi iteration for
// diagonally dominant ones, and power iteration for dominant eigenpairs.
// Every solver takes the SpMV as an injected function so the auto-tuned
// backends (simulated-device or native CPU) plug in directly.
package solvers

import (
	"context"
	"errors"
	"fmt"
	"math"

	"spmvtune/internal/errdefs"
	"spmvtune/internal/sparse"
)

// SpMV is the matrix-vector product backend: it must compute u = A*v.
type SpMV func(v, u []float64)

// Default returns the sequential reference backend for a.
func Default(a *sparse.CSR) SpMV {
	return func(v, u []float64) { a.MulVec(v, u) }
}

// Result reports a solve's outcome.
type Result struct {
	Iterations int
	Residual   float64 // final relative residual ||b-Ax|| / ||b||
	Converged  bool
}

// ErrNotConverged is wrapped by solver errors when the iteration budget
// runs out.
var ErrNotConverged = errors.New("solvers: not converged")

// ErrBreakdown is returned when a Krylov recurrence hits a (near-)zero
// inner product and cannot continue.
var ErrBreakdown = errors.New("solvers: breakdown")

// checkCtx converts a done context into a typed cancellation error; every
// *Ctx solver calls it once per iteration, so a deadline or cancel stops
// the solve within one SpMV. The returned error matches
// errdefs.ErrCanceled as well as the underlying context sentinel.
func checkCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return errdefs.Canceled(err)
	}
	return nil
}

func dot(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

func norm2(x []float64) float64 { return math.Sqrt(dot(x, x)) }

// CG solves A x = b for SPD A using conjugate gradients with the given
// SpMV backend. x is used as the initial guess and receives the solution.
func CG(mul SpMV, b, x []float64, tol float64, maxIter int) (Result, error) {
	return CGCtx(context.Background(), mul, b, x, tol, maxIter)
}

// CGCtx is CG under a context: cancellation is checked once per iteration
// and the solve returns early with an error matching errdefs.ErrCanceled
// (x then holds the best iterate so far).
func CGCtx(ctx context.Context, mul SpMV, b, x []float64, tol float64, maxIter int) (Result, error) {
	n := len(b)
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	r := make([]float64, n)
	mul(x, r) // r = A x0
	for i := range r {
		r[i] = b[i] - r[i]
	}
	p := append([]float64(nil), r...)
	ap := make([]float64, n)
	rr := dot(r, r)
	bNorm := norm2(b)
	if bNorm == 0 {
		bNorm = 1
	}
	res := Result{}
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		if math.Sqrt(rr) <= tol*bNorm {
			res.Converged = true
			break
		}
		if err := checkCtx(ctx); err != nil {
			res.Residual = math.Sqrt(rr) / bNorm
			return res, err
		}
		mul(p, ap)
		pap := dot(p, ap)
		if pap <= 0 {
			return res, fmt.Errorf("%w: p^T A p = %g (matrix not SPD?)", ErrBreakdown, pap)
		}
		alpha := rr / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := dot(r, r)
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	res.Residual = math.Sqrt(rr) / bNorm
	if !res.Converged && res.Residual > tol {
		return res, fmt.Errorf("%w after %d iterations (residual %g)", ErrNotConverged, res.Iterations, res.Residual)
	}
	res.Converged = true
	return res, nil
}

// BiCGSTAB solves A x = b for general square A.
func BiCGSTAB(mul SpMV, b, x []float64, tol float64, maxIter int) (Result, error) {
	return BiCGSTABCtx(context.Background(), mul, b, x, tol, maxIter)
}

// BiCGSTABCtx is BiCGSTAB under a context; see CGCtx for the cancellation
// contract.
func BiCGSTABCtx(ctx context.Context, mul SpMV, b, x []float64, tol float64, maxIter int) (Result, error) {
	n := len(b)
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	r := make([]float64, n)
	mul(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	rHat := append([]float64(nil), r...)
	v := make([]float64, n)
	p := make([]float64, n)
	s := make([]float64, n)
	t := make([]float64, n)
	rho, alpha, omega := 1.0, 1.0, 1.0
	bNorm := norm2(b)
	if bNorm == 0 {
		bNorm = 1
	}
	res := Result{}
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		res.Residual = norm2(r) / bNorm
		if res.Residual <= tol {
			res.Converged = true
			return res, nil
		}
		if err := checkCtx(ctx); err != nil {
			return res, err
		}
		rhoNew := dot(rHat, r)
		if math.Abs(rhoNew) < 1e-300 {
			return res, fmt.Errorf("%w: rho vanished", ErrBreakdown)
		}
		beta := (rhoNew / rho) * (alpha / omega)
		rho = rhoNew
		for i := range p {
			p[i] = r[i] + beta*(p[i]-omega*v[i])
		}
		mul(p, v)
		den := dot(rHat, v)
		if math.Abs(den) < 1e-300 {
			return res, fmt.Errorf("%w: rHat^T v vanished", ErrBreakdown)
		}
		alpha = rho / den
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if norm2(s)/bNorm <= tol {
			for i := range x {
				x[i] += alpha * p[i]
			}
			res.Iterations++
			res.Residual = norm2(s) / bNorm
			res.Converged = true
			return res, nil
		}
		mul(s, t)
		tt := dot(t, t)
		if tt < 1e-300 {
			return res, fmt.Errorf("%w: t vanished", ErrBreakdown)
		}
		omega = dot(t, s) / tt
		if math.Abs(omega) < 1e-300 {
			return res, fmt.Errorf("%w: omega vanished", ErrBreakdown)
		}
		for i := range x {
			x[i] += alpha*p[i] + omega*s[i]
			r[i] = s[i] - omega*t[i]
		}
	}
	res.Residual = norm2(r) / bNorm
	return res, fmt.Errorf("%w after %d iterations (residual %g)", ErrNotConverged, res.Iterations, res.Residual)
}

// Jacobi solves A x = b for strictly diagonally dominant A. It needs the
// matrix itself (for the diagonal), plus the SpMV backend for the
// off-diagonal products.
func Jacobi(a *sparse.CSR, mul SpMV, b, x []float64, tol float64, maxIter int) (Result, error) {
	return JacobiCtx(context.Background(), a, mul, b, x, tol, maxIter)
}

// JacobiCtx is Jacobi under a context; see CGCtx for the cancellation
// contract.
func JacobiCtx(ctx context.Context, a *sparse.CSR, mul SpMV, b, x []float64, tol float64, maxIter int) (Result, error) {
	n := len(b)
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	diag := make([]float64, n)
	for i := 0; i < a.Rows && i < n; i++ {
		d := a.At(i, i)
		if d == 0 {
			return Result{}, fmt.Errorf("%w: zero diagonal at row %d", ErrBreakdown, i)
		}
		diag[i] = d
	}
	ax := make([]float64, n)
	bNorm := norm2(b)
	if bNorm == 0 {
		bNorm = 1
	}
	res := Result{}
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		if err := checkCtx(ctx); err != nil {
			return res, err
		}
		mul(x, ax)
		rn := 0.0
		for i := range x {
			r := b[i] - ax[i]
			rn += r * r
			x[i] += r / diag[i]
		}
		res.Residual = math.Sqrt(rn) / bNorm
		if res.Residual <= tol {
			res.Converged = true
			return res, nil
		}
	}
	return res, fmt.Errorf("%w after %d iterations (residual %g)", ErrNotConverged, res.Iterations, res.Residual)
}

// PowerIteration finds the dominant eigenvalue/eigenvector of A. x is the
// starting vector (must be nonzero) and receives the eigenvector.
func PowerIteration(mul SpMV, x []float64, tol float64, maxIter int) (lambda float64, res Result, err error) {
	return PowerIterationCtx(context.Background(), mul, x, tol, maxIter)
}

// PowerIterationCtx is PowerIteration under a context; see CGCtx for the
// cancellation contract.
func PowerIterationCtx(ctx context.Context, mul SpMV, x []float64, tol float64, maxIter int) (lambda float64, res Result, err error) {
	n := len(x)
	if maxIter <= 0 {
		maxIter = 1000
	}
	nx := norm2(x)
	if nx == 0 {
		return 0, res, fmt.Errorf("%w: zero start vector", ErrBreakdown)
	}
	for i := range x {
		x[i] /= nx
	}
	y := make([]float64, n)
	prev := 0.0
	for res.Iterations = 0; res.Iterations < maxIter; res.Iterations++ {
		if cerr := checkCtx(ctx); cerr != nil {
			return lambda, res, cerr
		}
		mul(x, y)
		lambda = dot(x, y)
		ny := norm2(y)
		if ny == 0 {
			return 0, res, fmt.Errorf("%w: A annihilated the iterate", ErrBreakdown)
		}
		for i := range x {
			x[i] = y[i] / ny
		}
		res.Residual = math.Abs(lambda - prev)
		if res.Iterations > 0 && res.Residual <= tol*math.Max(1, math.Abs(lambda)) {
			res.Converged = true
			return lambda, res, nil
		}
		prev = lambda
	}
	return lambda, res, fmt.Errorf("%w after %d iterations", ErrNotConverged, res.Iterations)
}
