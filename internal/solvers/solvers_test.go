package solvers

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"spmvtune/internal/cpu"
	"spmvtune/internal/matgen"
	"spmvtune/internal/sparse"
)

// spdSystem builds a strictly diagonally dominant symmetric matrix and a
// right-hand side whose exact solution is all-ones.
func spdSystem(n, band int, seed int64) (*sparse.CSR, []float64, []float64) {
	coo := &sparse.COO{Rows: n, Cols: n}
	half := band / 2
	for i := 0; i < n; i++ {
		for d := -half; d <= half; d++ {
			j := i + d
			if j < 0 || j >= n {
				continue
			}
			if d == 0 {
				coo.Add(i, j, float64(band)+1)
			} else {
				coo.Add(i, j, -1)
			}
		}
	}
	a, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	xStar := make([]float64, n)
	for i := range xStar {
		xStar[i] = 1
	}
	b := make([]float64, n)
	a.MulVec(xStar, b)
	_ = seed
	return a, b, xStar
}

func maxAbsDiff(x, y []float64) float64 {
	m := 0.0
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > m {
			m = d
		}
	}
	return m
}

func TestCGSolvesSPD(t *testing.T) {
	a, b, xStar := spdSystem(5000, 5, 1)
	x := make([]float64, len(b))
	res, err := CG(Default(a), b, x, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations == 0 {
		t.Fatalf("result: %+v", res)
	}
	if d := maxAbsDiff(x, xStar); d > 1e-6 {
		t.Errorf("max error %g", d)
	}
}

func TestCGWithParallelBackend(t *testing.T) {
	a, b, xStar := spdSystem(3000, 7, 2)
	backend := func(v, u []float64) { cpu.MulVecNNZ(a, v, u, 4) }
	x := make([]float64, len(b))
	if _, err := CG(backend, b, x, 1e-10, 0); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(x, xStar); d > 1e-6 {
		t.Errorf("max error %g with parallel backend", d)
	}
}

func TestCGDetectsNonSPD(t *testing.T) {
	// An antisymmetric-ish matrix has p^T A p ~ 0: CG must break down
	// rather than loop.
	coo := &sparse.COO{Rows: 4, Cols: 4}
	coo.Add(0, 1, 1)
	coo.Add(1, 0, -1)
	coo.Add(2, 3, 1)
	coo.Add(3, 2, -1)
	a, _ := coo.ToCSR()
	b := []float64{1, 1, 1, 1}
	x := make([]float64, 4)
	_, err := CG(Default(a), b, x, 1e-10, 100)
	if err == nil {
		t.Fatal("CG on non-SPD matrix should fail")
	}
	if !errors.Is(err, ErrBreakdown) && !errors.Is(err, ErrNotConverged) {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestBiCGSTABSolvesNonsymmetric(t *testing.T) {
	// Diagonally dominant but nonsymmetric: upper off-diagonal -1, lower
	// off-diagonal -0.5.
	n := 2000
	coo := &sparse.COO{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
		if i+1 < n {
			coo.Add(i, i+1, -1)
			coo.Add(i+1, i, -0.5)
		}
	}
	a, _ := coo.ToCSR()
	xStar := make([]float64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range xStar {
		xStar[i] = rng.NormFloat64()
	}
	b := make([]float64, n)
	a.MulVec(xStar, b)
	x := make([]float64, n)
	res, err := BiCGSTAB(Default(a), b, x, 1e-10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if d := maxAbsDiff(x, xStar); d > 1e-6 {
		t.Errorf("max error %g", d)
	}
}

func TestBiCGSTABIterationBudget(t *testing.T) {
	a, b, _ := spdSystem(500, 5, 4)
	x := make([]float64, len(b))
	_, err := BiCGSTAB(Default(a), b, x, 1e-14, 2) // absurdly small budget
	if !errors.Is(err, ErrNotConverged) {
		t.Errorf("want ErrNotConverged, got %v", err)
	}
}

func TestJacobi(t *testing.T) {
	a, b, xStar := spdSystem(1000, 3, 5)
	x := make([]float64, len(b))
	res, err := Jacobi(a, Default(a), b, x, 1e-10, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("not converged: %+v", res)
	}
	if d := maxAbsDiff(x, xStar); d > 1e-6 {
		t.Errorf("max error %g", d)
	}
	// Zero diagonal is rejected.
	zero := matgen.SingleNNZRows(4, 4, 6)
	zero.ColIdx[0] = 1 // row 0 has no diagonal entry
	if _, err := Jacobi(zero, Default(zero), []float64{1, 1, 1, 1}, make([]float64, 4), 1e-10, 10); err == nil {
		t.Error("zero diagonal accepted")
	}
}

func TestPowerIteration(t *testing.T) {
	// Diagonal matrix: dominant eigenvalue is the largest diagonal entry.
	n := 200
	coo := &sparse.COO{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		coo.Add(i, i, float64(i+1))
	}
	a, _ := coo.ToCSR()
	x := make([]float64, n)
	for i := range x {
		x[i] = 1
	}
	lambda, res, err := PowerIteration(Default(a), x, 1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-float64(n)) > 1e-6 {
		t.Errorf("dominant eigenvalue %g, want %d", lambda, n)
	}
	if !res.Converged {
		t.Error("not marked converged")
	}
	// Eigenvector concentrates on the last coordinate.
	if math.Abs(math.Abs(x[n-1])-1) > 1e-3 {
		t.Errorf("eigenvector tail %g, want ~1", x[n-1])
	}
	// Zero start vector rejected.
	if _, _, err := PowerIteration(Default(a), make([]float64, n), 1e-10, 10); err == nil {
		t.Error("zero start accepted")
	}
}

func TestCGZeroRHS(t *testing.T) {
	a, _, _ := spdSystem(100, 3, 7)
	b := make([]float64, 100)
	x := make([]float64, 100)
	res, err := CG(Default(a), b, x, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("zero system should converge immediately")
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("solution of A x = 0 from x0 = 0 must stay 0")
		}
	}
}
