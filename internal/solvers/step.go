package solvers

// Resident stepper variants of the batch solvers. The batch API (CGCtx,
// GMRESCtx, ...) runs a whole solve inside one call; a Stepper instead
// holds the solve's state — iterate, residual recurrences, Krylov
// workspace — resident between calls, advancing one iteration per Step.
// This is the shape a serving layer needs: the expensive per-structure
// work (tuning plan, scratch buffers) stays pinned across iterations
// while each advance is one cheap, cancellable call. Every SpMV goes
// through an injected SpMVCtx executor, so the auto-tuned guarded
// execution path (or any other backend) plugs in directly and its errors
// propagate out of Step instead of being swallowed.
//
// Steppers allocate all workspace at construction: Step performs no
// allocations of its own beyond what the injected executor does, so a
// long-running solve has a flat memory profile.

import (
	"context"
	"fmt"
	"math"

	"spmvtune/internal/sparse"
)

// SpMVCtx is a context-aware, fallible SpMV executor: it computes u = A*v,
// may be canceled through ctx, and reports execution failures instead of
// panicking. The serving layer injects the guarded plan executor here; the
// plain in-process backends lift via Lift.
type SpMVCtx func(ctx context.Context, v, u []float64) error

// Lift adapts a plain SpMV backend into an SpMVCtx (no cancellation
// mid-product, no failure mode — the reference backends are total).
func Lift(mul SpMV) SpMVCtx {
	return func(_ context.Context, v, u []float64) error {
		mul(v, u)
		return nil
	}
}

// Status is a point-in-time snapshot of a resident solve.
type Status struct {
	// Iterations performed so far (inner iterations for GMRES — one per
	// SpMV, matching the batch solvers' counting).
	Iterations int
	// Residual is the current convergence measure: relative residual
	// ||b-Ax||/||b|| for the linear solvers, eigenvalue drift for power
	// iteration, L1 rank change for PageRank.
	Residual float64
	// Converged reports the tolerance has been met; further Steps are
	// no-ops.
	Converged bool
}

// Stepper advances a resident iterative solve one iteration at a time.
// Implementations are not safe for concurrent use; the caller serializes
// Steps (the serving layer holds a per-session lock).
type Stepper interface {
	// Step advances by one iteration (one or more SpMVs through the
	// injected executor) and returns the new status. Once Converged, Step
	// returns the final status without work. A cancellation or executor
	// error leaves the iterate at the last completed iteration; a
	// breakdown error is sticky — the solve cannot continue.
	Step(ctx context.Context) (Status, error)
	// Status reports progress without advancing.
	Status() Status
	// Solution returns the current iterate. The slice is the solver's
	// live buffer, not a copy: it is only safe to read between Steps.
	Solution() []float64
}

// ---------------------------------------------------------------- CG ----

// CGStepper is conjugate gradients with resident state: one Step is one
// CG iteration (one SpMV). The first Step additionally pays the residual
// initialization SpMV (r = b - A·x0).
type CGStepper struct {
	mul         SpMVCtx
	b, x        []float64
	r, p, ap    []float64
	rr, bNorm   float64
	tol         float64
	st          Status
	initialized bool
	failed      error
}

// NewCGStepper prepares a CG solve of A x = b for SPD A. x is the initial
// guess and remains the live iterate (Solution aliases it). All workspace
// is allocated here.
func NewCGStepper(mul SpMVCtx, b, x []float64, tol float64) (*CGStepper, error) {
	if len(b) != len(x) {
		return nil, fmt.Errorf("solvers: cg: len(b)=%d != len(x)=%d", len(b), len(x))
	}
	n := len(b)
	s := &CGStepper{
		mul: mul, b: b, x: x, tol: tol,
		r: make([]float64, n), p: make([]float64, n), ap: make([]float64, n),
	}
	s.bNorm = norm2(b)
	if s.bNorm == 0 {
		s.bNorm = 1
	}
	return s, nil
}

func (s *CGStepper) Status() Status      { return s.st }
func (s *CGStepper) Solution() []float64 { return s.x }

func (s *CGStepper) init(ctx context.Context) error {
	if err := s.mul(ctx, s.x, s.r); err != nil {
		return err
	}
	for i := range s.r {
		s.r[i] = s.b[i] - s.r[i]
	}
	copy(s.p, s.r)
	s.rr = dot(s.r, s.r)
	s.st.Residual = math.Sqrt(s.rr) / s.bNorm
	s.initialized = true
	return nil
}

// Step performs one CG iteration. Convergence is checked against the
// recurrence residual after the update, so the trajectory (iteration
// count, residuals) matches CGCtx on the same system.
func (s *CGStepper) Step(ctx context.Context) (Status, error) {
	if s.failed != nil {
		return s.st, s.failed
	}
	if s.st.Converged {
		return s.st, nil
	}
	if err := checkCtx(ctx); err != nil {
		return s.st, err
	}
	if !s.initialized {
		if err := s.init(ctx); err != nil {
			return s.st, err
		}
		if s.st.Residual <= s.tol {
			s.st.Converged = true
			return s.st, nil
		}
	}
	if err := s.mul(ctx, s.p, s.ap); err != nil {
		return s.st, err
	}
	pap := dot(s.p, s.ap)
	if pap <= 0 {
		s.failed = fmt.Errorf("%w: p^T A p = %g (matrix not SPD?)", ErrBreakdown, pap)
		return s.st, s.failed
	}
	alpha := s.rr / pap
	for i := range s.x {
		s.x[i] += alpha * s.p[i]
		s.r[i] -= alpha * s.ap[i]
	}
	rrNew := dot(s.r, s.r)
	beta := rrNew / s.rr
	s.rr = rrNew
	for i := range s.p {
		s.p[i] = s.r[i] + beta*s.p[i]
	}
	s.st.Iterations++
	s.st.Residual = math.Sqrt(s.rr) / s.bNorm
	if s.st.Residual <= s.tol {
		s.st.Converged = true
	}
	return s.st, nil
}

// ------------------------------------------------------------ Jacobi ----

// JacobiStepper is Jacobi iteration with resident state: one Step is one
// sweep (one SpMV). It needs the matrix itself for the diagonal.
type JacobiStepper struct {
	mul    SpMVCtx
	b, x   []float64
	diag   []float64
	ax     []float64
	bNorm  float64
	tol    float64
	st     Status
	failed error
}

// NewJacobiStepper prepares a Jacobi solve of A x = b for strictly
// diagonally dominant A. A zero diagonal is a construction-time breakdown.
func NewJacobiStepper(a *sparse.CSR, mul SpMVCtx, b, x []float64, tol float64) (*JacobiStepper, error) {
	if len(b) != len(x) {
		return nil, fmt.Errorf("solvers: jacobi: len(b)=%d != len(x)=%d", len(b), len(x))
	}
	n := len(b)
	s := &JacobiStepper{
		mul: mul, b: b, x: x, tol: tol,
		diag: make([]float64, n), ax: make([]float64, n),
	}
	for i := 0; i < a.Rows && i < n; i++ {
		d := a.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("%w: zero diagonal at row %d", ErrBreakdown, i)
		}
		s.diag[i] = d
	}
	s.bNorm = norm2(b)
	if s.bNorm == 0 {
		s.bNorm = 1
	}
	return s, nil
}

func (s *JacobiStepper) Status() Status      { return s.st }
func (s *JacobiStepper) Solution() []float64 { return s.x }

func (s *JacobiStepper) Step(ctx context.Context) (Status, error) {
	if s.failed != nil {
		return s.st, s.failed
	}
	if s.st.Converged {
		return s.st, nil
	}
	if err := checkCtx(ctx); err != nil {
		return s.st, err
	}
	if err := s.mul(ctx, s.x, s.ax); err != nil {
		return s.st, err
	}
	rn := 0.0
	for i := range s.x {
		r := s.b[i] - s.ax[i]
		rn += r * r
		s.x[i] += r / s.diag[i]
	}
	s.st.Iterations++
	s.st.Residual = math.Sqrt(rn) / s.bNorm
	if s.st.Residual <= s.tol {
		s.st.Converged = true
	}
	return s.st, nil
}

// ------------------------------------------------------------- GMRES ----

// GMRESStepper is restarted GMRES(m) with resident state: one Step is one
// restart cycle — up to restart Arnoldi steps (one SpMV each) followed by
// the least-squares update of x. Status.Iterations counts inner Arnoldi
// steps, matching GMRESCtx. All Krylov workspace is allocated once at
// construction and reused across cycles.
type GMRESStepper struct {
	mul     SpMVCtx
	b, x    []float64
	restart int
	tol     float64

	r, w   []float64
	v      [][]float64
	h      [][]float64
	cs, sn []float64
	g, y   []float64

	bNorm  float64
	st     Status
	failed error
}

// NewGMRESStepper prepares a GMRES solve of A x = b for general square A.
// restart <= 0 selects min(n, 30).
func NewGMRESStepper(mul SpMVCtx, b, x []float64, tol float64, restart int) (*GMRESStepper, error) {
	if len(b) != len(x) {
		return nil, fmt.Errorf("solvers: gmres: len(b)=%d != len(x)=%d", len(b), len(x))
	}
	n := len(b)
	if restart <= 0 {
		restart = 30
	}
	if restart > n {
		restart = n
	}
	s := &GMRESStepper{
		mul: mul, b: b, x: x, tol: tol, restart: restart,
		r: make([]float64, n), w: make([]float64, n),
		v:  make([][]float64, restart+1),
		h:  make([][]float64, restart),
		cs: make([]float64, restart), sn: make([]float64, restart),
		g: make([]float64, restart+1), y: make([]float64, restart),
	}
	for i := range s.v {
		s.v[i] = make([]float64, n)
	}
	for j := range s.h {
		s.h[j] = make([]float64, restart+1)
	}
	s.bNorm = norm2(b)
	if s.bNorm == 0 {
		s.bNorm = 1
	}
	return s, nil
}

func (s *GMRESStepper) Status() Status      { return s.st }
func (s *GMRESStepper) Solution() []float64 { return s.x }

func (s *GMRESStepper) Step(ctx context.Context) (Status, error) {
	if s.failed != nil {
		return s.st, s.failed
	}
	if s.st.Converged {
		return s.st, nil
	}
	// r = b - A x.
	if err := s.mul(ctx, s.x, s.r); err != nil {
		return s.st, err
	}
	for i := range s.r {
		s.r[i] = s.b[i] - s.r[i]
	}
	beta := norm2(s.r)
	s.st.Residual = beta / s.bNorm
	if s.st.Residual <= s.tol {
		s.st.Converged = true
		return s.st, nil
	}
	for i := range s.r {
		s.v[0][i] = s.r[i] / beta
	}
	for i := range s.g {
		s.g[i] = 0
	}
	s.g[0] = beta

	j := 0
	for ; j < s.restart; j++ {
		if err := checkCtx(ctx); err != nil {
			return s.st, err
		}
		if err := s.mul(ctx, s.v[j], s.w); err != nil {
			return s.st, err
		}
		s.st.Iterations++
		// Modified Gram-Schmidt into the preallocated Hessenberg column.
		col := s.h[j][:j+2]
		for i := 0; i <= j; i++ {
			col[i] = dot(s.w, s.v[i])
			for k := range s.w {
				s.w[k] -= col[i] * s.v[i][k]
			}
		}
		col[j+1] = norm2(s.w)
		if col[j+1] > 1e-300 {
			for k := range s.w {
				s.v[j+1][k] = s.w[k] / col[j+1]
			}
		}
		for i := 0; i < j; i++ {
			col[i], col[i+1] = s.cs[i]*col[i]+s.sn[i]*col[i+1], -s.sn[i]*col[i]+s.cs[i]*col[i+1]
		}
		denom := math.Hypot(col[j], col[j+1])
		if denom < 1e-300 {
			j++
			break
		}
		s.cs[j] = col[j] / denom
		s.sn[j] = col[j+1] / denom
		col[j] = denom
		col[j+1] = 0
		s.g[j+1] = -s.sn[j] * s.g[j]
		s.g[j] = s.cs[j] * s.g[j]

		s.st.Residual = math.Abs(s.g[j+1]) / s.bNorm
		if s.st.Residual <= s.tol {
			j++
			break
		}
	}
	// Back-substitute y and apply the update.
	for i := j - 1; i >= 0; i-- {
		sum := s.g[i]
		for k := i + 1; k < j; k++ {
			sum -= s.h[k][i] * s.y[k]
		}
		if math.Abs(s.h[i][i]) < 1e-300 {
			s.failed = fmt.Errorf("%w: singular Hessenberg diagonal", ErrBreakdown)
			return s.st, s.failed
		}
		s.y[i] = sum / s.h[i][i]
	}
	for i := 0; i < j; i++ {
		yi := s.y[i]
		vi := s.v[i]
		for k := range s.x {
			s.x[k] += yi * vi[k]
		}
	}
	if s.st.Residual <= s.tol {
		s.st.Converged = true
	}
	return s.st, nil
}

// ------------------------------------------------------------- Power ----

// PowerStepper is power iteration with resident state: one Step is one
// normalized multiply. Lambda exposes the current dominant-eigenvalue
// estimate.
type PowerStepper struct {
	mul    SpMVCtx
	x, y   []float64
	tol    float64
	lambda float64
	prev   float64
	st     Status
	failed error
}

// NewPowerStepper prepares a dominant-eigenpair iteration. x is the start
// vector (must be nonzero) and is normalized in place.
func NewPowerStepper(mul SpMVCtx, x []float64, tol float64) (*PowerStepper, error) {
	nx := norm2(x)
	if nx == 0 {
		return nil, fmt.Errorf("%w: zero start vector", ErrBreakdown)
	}
	for i := range x {
		x[i] /= nx
	}
	return &PowerStepper{mul: mul, x: x, y: make([]float64, len(x)), tol: tol}, nil
}

func (s *PowerStepper) Status() Status      { return s.st }
func (s *PowerStepper) Solution() []float64 { return s.x }

// Lambda returns the current dominant-eigenvalue estimate.
func (s *PowerStepper) Lambda() float64 { return s.lambda }

func (s *PowerStepper) Step(ctx context.Context) (Status, error) {
	if s.failed != nil {
		return s.st, s.failed
	}
	if s.st.Converged {
		return s.st, nil
	}
	if err := checkCtx(ctx); err != nil {
		return s.st, err
	}
	if err := s.mul(ctx, s.x, s.y); err != nil {
		return s.st, err
	}
	s.lambda = dot(s.x, s.y)
	ny := norm2(s.y)
	if ny == 0 {
		s.failed = fmt.Errorf("%w: A annihilated the iterate", ErrBreakdown)
		return s.st, s.failed
	}
	for i := range s.x {
		s.x[i] = s.y[i] / ny
	}
	s.st.Residual = math.Abs(s.lambda - s.prev)
	if s.st.Iterations > 0 && s.st.Residual <= s.tol*math.Max(1, math.Abs(s.lambda)) {
		s.st.Converged = true
	}
	s.prev = s.lambda
	s.st.Iterations++
	return s.st, nil
}

// ---------------------------------------------------------- PageRank ----

// PageRankStepper iterates r' = d·T·r + (1-d)/n, where T is the
// column-stochastic transition matrix the injected executor multiplies
// by. One Step is one rank update (one SpMV); Residual is the L1 rank
// change, the standard PageRank convergence measure.
type PageRankStepper struct {
	mul     SpMVCtx
	x, y    []float64
	damping float64
	tol     float64
	st      Status
	failed  error
}

// NewPageRankStepper prepares a PageRank iteration over a transition
// matrix of dimension n = len(x). A nil or zero x starts from the uniform
// distribution; damping outside (0,1] is rejected.
func NewPageRankStepper(mul SpMVCtx, x []float64, damping, tol float64) (*PageRankStepper, error) {
	if damping <= 0 || damping > 1 {
		return nil, fmt.Errorf("solvers: pagerank: damping %g outside (0,1]", damping)
	}
	n := len(x)
	if n == 0 {
		return nil, fmt.Errorf("solvers: pagerank: empty rank vector")
	}
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	if sum == 0 {
		for i := range x {
			x[i] = 1 / float64(n)
		}
	}
	return &PageRankStepper{mul: mul, x: x, y: make([]float64, n), damping: damping, tol: tol}, nil
}

func (s *PageRankStepper) Status() Status      { return s.st }
func (s *PageRankStepper) Solution() []float64 { return s.x }

func (s *PageRankStepper) Step(ctx context.Context) (Status, error) {
	if s.failed != nil {
		return s.st, s.failed
	}
	if s.st.Converged {
		return s.st, nil
	}
	if err := checkCtx(ctx); err != nil {
		return s.st, err
	}
	if err := s.mul(ctx, s.x, s.y); err != nil {
		return s.st, err
	}
	n := float64(len(s.x))
	teleport := (1 - s.damping) / n
	delta := 0.0
	for i := range s.x {
		next := s.damping*s.y[i] + teleport
		delta += math.Abs(next - s.x[i])
		s.x[i] = next
	}
	s.st.Iterations++
	s.st.Residual = delta
	if delta <= s.tol {
		s.st.Converged = true
	}
	return s.st, nil
}
