package solvers

import (
	"context"
	"errors"
	"math"
	"testing"

	"spmvtune/internal/sparse"
)

func stepUntil(t *testing.T, s Stepper, maxSteps int) Status {
	t.Helper()
	st := s.Status()
	for i := 0; i < maxSteps && !st.Converged; i++ {
		var err error
		st, err = s.Step(context.Background())
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	return st
}

func TestCGStepperMatchesBatchCG(t *testing.T) {
	a, b, xStar := spdSystem(2000, 5, 1)
	tol := 1e-10

	xBatch := make([]float64, len(b))
	res, err := CG(Default(a), b, xBatch, tol, 0)
	if err != nil {
		t.Fatal(err)
	}

	xStep := make([]float64, len(b))
	s, err := NewCGStepper(Lift(Default(a)), b, xStep, tol)
	if err != nil {
		t.Fatal(err)
	}
	st := stepUntil(t, s, 10*res.Iterations+10)
	if !st.Converged {
		t.Fatalf("stepper did not converge: %+v", st)
	}
	if st.Iterations != res.Iterations {
		t.Errorf("iterations: stepper %d, batch %d", st.Iterations, res.Iterations)
	}
	if d := maxAbsDiff(s.Solution(), xStar); d > 1e-6 {
		t.Errorf("max error %g", d)
	}
	// Step after convergence is a no-op.
	again, err := s.Step(context.Background())
	if err != nil || again != st {
		t.Errorf("post-convergence step changed state: %+v err=%v", again, err)
	}
}

func TestCGStepperBreakdownSticky(t *testing.T) {
	// -I is symmetric negative definite: p^T A p < 0 on the first step.
	coo := &sparse.COO{Rows: 4, Cols: 4}
	for i := 0; i < 4; i++ {
		coo.Add(i, i, -1)
	}
	a, _ := coo.ToCSR()
	b := []float64{1, 2, 3, 4}
	s, err := NewCGStepper(Lift(Default(a)), b, make([]float64, 4), 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(context.Background()); !errors.Is(err, ErrBreakdown) {
		t.Fatalf("want ErrBreakdown, got %v", err)
	}
	if _, err := s.Step(context.Background()); !errors.Is(err, ErrBreakdown) {
		t.Fatalf("breakdown not sticky, got %v", err)
	}
}

func TestCGStepperCancellation(t *testing.T) {
	a, b, _ := spdSystem(500, 5, 1)
	s, err := NewCGStepper(Lift(Default(a)), b, make([]float64, len(b)), 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := s.Status()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Step(ctx); err == nil {
		t.Fatal("want cancellation error")
	}
	if s.Status() != before {
		t.Errorf("canceled step mutated status: %+v -> %+v", before, s.Status())
	}
	// The solve resumes after cancellation.
	if _, err := s.Step(context.Background()); err != nil {
		t.Fatalf("resume after cancel: %v", err)
	}
	if s.Status().Iterations != before.Iterations+1 {
		t.Errorf("resume did not advance: %+v", s.Status())
	}
}

func TestCGStepperExecutorErrorPropagates(t *testing.T) {
	a, b, _ := spdSystem(100, 3, 1)
	boom := errors.New("device fault")
	calls := 0
	mul := func(ctx context.Context, v, u []float64) error {
		calls++
		if calls == 3 {
			return boom
		}
		Default(a)(v, u)
		return nil
	}
	s, err := NewCGStepper(mul, b, make([]float64, len(b)), 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	var stepErr error
	for i := 0; i < 5 && stepErr == nil; i++ {
		_, stepErr = s.Step(context.Background())
	}
	if !errors.Is(stepErr, boom) {
		t.Fatalf("executor error not propagated: %v", stepErr)
	}
	// Executor errors are transient: the stepper retries the same iteration.
	if _, err := s.Step(context.Background()); err != nil {
		t.Fatalf("retry after executor error: %v", err)
	}
}

func TestJacobiStepperMatchesBatch(t *testing.T) {
	a, b, xStar := spdSystem(1000, 5, 2)
	tol := 1e-10

	xBatch := make([]float64, len(b))
	res, err := Jacobi(a, Default(a), b, xBatch, tol, 0)
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewJacobiStepper(a, Lift(Default(a)), b, make([]float64, len(b)), tol)
	if err != nil {
		t.Fatal(err)
	}
	st := stepUntil(t, s, 10*res.Iterations+10)
	if !st.Converged {
		t.Fatalf("stepper did not converge: %+v", st)
	}
	if d := maxAbsDiff(s.Solution(), xStar); d > 1e-6 {
		t.Errorf("max error %g", d)
	}
}

func TestJacobiStepperZeroDiagonal(t *testing.T) {
	coo := &sparse.COO{Rows: 2, Cols: 2}
	coo.Add(0, 1, 1)
	coo.Add(1, 0, 1)
	a, _ := coo.ToCSR()
	_, err := NewJacobiStepper(a, Lift(Default(a)), []float64{1, 1}, []float64{0, 0}, 1e-10)
	if !errors.Is(err, ErrBreakdown) {
		t.Fatalf("want ErrBreakdown at construction, got %v", err)
	}
}

func TestGMRESStepperSolves(t *testing.T) {
	a, b, xStar := spdSystem(800, 7, 3)
	tol := 1e-10
	s, err := NewGMRESStepper(Lift(Default(a)), b, make([]float64, len(b)), tol, 20)
	if err != nil {
		t.Fatal(err)
	}
	st := stepUntil(t, s, 200)
	if !st.Converged {
		t.Fatalf("stepper did not converge: %+v", st)
	}
	if d := maxAbsDiff(s.Solution(), xStar); d > 1e-6 {
		t.Errorf("max error %g", d)
	}
	// True residual agrees with the recurrence residual.
	r := make([]float64, len(b))
	Default(a)(s.Solution(), r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	if rel := norm2(r) / norm2(b); rel > 10*tol {
		t.Errorf("true relative residual %g", rel)
	}
}

func TestPowerStepperFindsDominantEigenvalue(t *testing.T) {
	// Diagonal matrix: dominant eigenvalue is the largest entry.
	coo := &sparse.COO{Rows: 50, Cols: 50}
	for i := 0; i < 50; i++ {
		coo.Add(i, i, float64(i+1))
	}
	a, _ := coo.ToCSR()
	x := make([]float64, 50)
	for i := range x {
		x[i] = 1
	}
	s, err := NewPowerStepper(Lift(Default(a)), x, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	st := stepUntil(t, s, 5000)
	if !st.Converged {
		t.Fatalf("did not converge: %+v", st)
	}
	if math.Abs(s.Lambda()-50) > 1e-6 {
		t.Errorf("lambda = %g, want 50", s.Lambda())
	}
}

func TestPageRankStepperUniformChain(t *testing.T) {
	// Directed 4-cycle: column-stochastic T is a permutation, so the
	// stationary distribution is uniform.
	n := 4
	coo := &sparse.COO{Rows: n, Cols: n}
	for j := 0; j < n; j++ {
		coo.Add((j+1)%n, j, 1)
	}
	a, _ := coo.ToCSR()
	s, err := NewPageRankStepper(Lift(Default(a)), make([]float64, n), 0.85, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	st := stepUntil(t, s, 1000)
	if !st.Converged {
		t.Fatalf("did not converge: %+v", st)
	}
	sum := 0.0
	for _, v := range s.Solution() {
		sum += v
		if math.Abs(v-0.25) > 1e-9 {
			t.Errorf("rank %g, want 0.25", v)
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("ranks sum to %g", sum)
	}
}

func TestPageRankStepperRejectsBadDamping(t *testing.T) {
	if _, err := NewPageRankStepper(Lift(func(v, u []float64) {}), make([]float64, 4), 0, 1e-9); err == nil {
		t.Error("damping 0 accepted")
	}
	if _, err := NewPageRankStepper(Lift(func(v, u []float64) {}), make([]float64, 4), 1.5, 1e-9); err == nil {
		t.Error("damping 1.5 accepted")
	}
}

func TestCGStepperZeroAllocPerStep(t *testing.T) {
	a, b, _ := spdSystem(300, 5, 4)
	mul := Default(a)
	s, err := NewCGStepper(Lift(mul), b, make([]float64, len(b)), 1e-300)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Step(ctx); err != nil { // pay lazy init outside the measurement
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := s.Step(ctx); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("CG step allocates %v times per run, want 0", allocs)
	}
}
