package sparse

import (
	"sort"
)

// COO is a sparse matrix in coordinate (triplet) format. It is the natural
// assembly and interchange format (Matrix Market files are COO) and converts
// to CSR for computation.
type COO struct {
	Rows, Cols int
	RowIdx     []int32
	ColIdx     []int32
	Val        []float64
}

// NNZ returns the number of stored triplets (duplicates counted).
func (c *COO) NNZ() int { return len(c.Val) }

// Add appends a triplet. Bounds are checked at ToCSR/Validate time so that
// bulk assembly stays cheap.
func (c *COO) Add(i, j int, v float64) {
	c.RowIdx = append(c.RowIdx, int32(i))
	c.ColIdx = append(c.ColIdx, int32(j))
	c.Val = append(c.Val, v)
}

// Validate checks lengths and index bounds.
func (c *COO) Validate() error {
	if len(c.RowIdx) != len(c.ColIdx) || len(c.RowIdx) != len(c.Val) {
		return invalidf("COO slice lengths differ: %d/%d/%d", len(c.RowIdx), len(c.ColIdx), len(c.Val))
	}
	for k := range c.RowIdx {
		if c.RowIdx[k] < 0 || int(c.RowIdx[k]) >= c.Rows {
			return invalidf("COO row index %d out of range at %d", c.RowIdx[k], k)
		}
		if c.ColIdx[k] < 0 || int(c.ColIdx[k]) >= c.Cols {
			return invalidf("COO col index %d out of range at %d", c.ColIdx[k], k)
		}
	}
	return nil
}

// ToCSR converts the triplets to CSR, summing duplicate (i,j) entries and
// sorting each row by column index.
func (c *COO) ToCSR() (*CSR, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	a := &CSR{Rows: c.Rows, Cols: c.Cols, RowPtr: make([]int64, c.Rows+1)}
	for _, r := range c.RowIdx {
		a.RowPtr[r+1]++
	}
	for i := 0; i < c.Rows; i++ {
		a.RowPtr[i+1] += a.RowPtr[i]
	}
	a.ColIdx = make([]int32, c.NNZ())
	a.Val = make([]float64, c.NNZ())
	next := make([]int64, c.Rows)
	copy(next, a.RowPtr[:c.Rows])
	for k := range c.RowIdx {
		r := c.RowIdx[k]
		p := next[r]
		next[r]++
		a.ColIdx[p] = c.ColIdx[k]
		a.Val[p] = c.Val[k]
	}
	a.SortRows()
	a.sumDuplicates()
	return a, nil
}

// sumDuplicates merges consecutive equal column indices in each (sorted)
// row, compacting the storage in place.
func (a *CSR) sumDuplicates() {
	w := int64(0)
	newPtr := make([]int64, len(a.RowPtr))
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			if w > newPtr[i] && a.ColIdx[w-1] == a.ColIdx[k] {
				a.Val[w-1] += a.Val[k]
				continue
			}
			a.ColIdx[w] = a.ColIdx[k]
			a.Val[w] = a.Val[k]
			w++
		}
		newPtr[i+1] = w
	}
	copy(a.RowPtr, newPtr)
	a.ColIdx = a.ColIdx[:w]
	a.Val = a.Val[:w]
}

// FromCSR converts a CSR matrix to COO triplets in row-major order.
func FromCSR(a *CSR) *COO {
	c := &COO{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowIdx: make([]int32, 0, a.NNZ()),
		ColIdx: make([]int32, 0, a.NNZ()),
		Val:    make([]float64, 0, a.NNZ()),
	}
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k := range cols {
			c.RowIdx = append(c.RowIdx, int32(i))
			c.ColIdx = append(c.ColIdx, cols[k])
			c.Val = append(c.Val, vals[k])
		}
	}
	return c
}

// SortRowMajor sorts the triplets by (row, col); useful before writing
// interchange files deterministically.
func (c *COO) SortRowMajor() {
	sort.Sort(cooSorter{c})
}

type cooSorter struct{ c *COO }

func (s cooSorter) Len() int { return s.c.NNZ() }
func (s cooSorter) Less(i, j int) bool {
	if s.c.RowIdx[i] != s.c.RowIdx[j] {
		return s.c.RowIdx[i] < s.c.RowIdx[j]
	}
	return s.c.ColIdx[i] < s.c.ColIdx[j]
}
func (s cooSorter) Swap(i, j int) {
	s.c.RowIdx[i], s.c.RowIdx[j] = s.c.RowIdx[j], s.c.RowIdx[i]
	s.c.ColIdx[i], s.c.ColIdx[j] = s.c.ColIdx[j], s.c.ColIdx[i]
	s.c.Val[i], s.c.Val[j] = s.c.Val[j], s.c.Val[i]
}
