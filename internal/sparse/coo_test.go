package sparse

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestCOOToCSRBasic(t *testing.T) {
	c := &COO{Rows: 3, Cols: 3}
	c.Add(2, 1, 5)
	c.Add(0, 0, 1)
	c.Add(0, 2, 3)
	c.Add(1, 1, 2)
	a, err := c.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.HasSortedRows() {
		t.Error("ToCSR rows not sorted")
	}
	if a.At(0, 0) != 1 || a.At(0, 2) != 3 || a.At(1, 1) != 2 || a.At(2, 1) != 5 {
		t.Errorf("wrong entries: %+v", a)
	}
}

func TestCOOToCSRSumsDuplicates(t *testing.T) {
	c := &COO{Rows: 2, Cols: 2}
	c.Add(0, 1, 1)
	c.Add(0, 1, 2)
	c.Add(0, 1, 4)
	c.Add(1, 0, -1)
	c.Add(1, 0, 1)
	a, err := c.ToCSR()
	if err != nil {
		t.Fatal(err)
	}
	if got := a.At(0, 1); got != 7 {
		t.Errorf("duplicate sum = %v, want 7", got)
	}
	if got := a.At(1, 0); got != 0 {
		t.Errorf("cancelled duplicate = %v, want 0 (stored)", got)
	}
	if a.NNZ() != 2 {
		t.Errorf("NNZ = %d, want 2 after merging", a.NNZ())
	}
}

func TestCOOValidate(t *testing.T) {
	c := &COO{Rows: 2, Cols: 2}
	c.Add(0, 0, 1)
	c.RowIdx[0] = 5
	if err := c.Validate(); err == nil {
		t.Error("accepted out-of-range row")
	}
	c.RowIdx[0] = 0
	c.ColIdx[0] = -1
	if err := c.Validate(); err == nil {
		t.Error("accepted negative col")
	}
	c.ColIdx = c.ColIdx[:0]
	if err := c.Validate(); err == nil {
		t.Error("accepted mismatched lengths")
	}
}

func TestCOORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		a := randomCSR(rng, 1+rng.Intn(30), 1+rng.Intn(30), 5)
		c := FromCSR(a)
		b, err := c.ToCSR()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.RowPtr, b.RowPtr) || !reflect.DeepEqual(a.ColIdx, b.ColIdx) || !reflect.DeepEqual(a.Val, b.Val) {
			t.Fatalf("trial %d: CSR->COO->CSR did not round-trip", trial)
		}
	}
}

func TestCOOSortRowMajor(t *testing.T) {
	c := &COO{Rows: 3, Cols: 3}
	c.Add(2, 2, 1)
	c.Add(0, 1, 2)
	c.Add(2, 0, 3)
	c.Add(0, 0, 4)
	c.SortRowMajor()
	wantRows := []int32{0, 0, 2, 2}
	wantCols := []int32{0, 1, 0, 2}
	if !reflect.DeepEqual(c.RowIdx, wantRows) || !reflect.DeepEqual(c.ColIdx, wantCols) {
		t.Errorf("sorted order rows=%v cols=%v", c.RowIdx, c.ColIdx)
	}
}
