// Package sparse provides the sparse-matrix substrate for the SpMV
// auto-tuning framework: CSR and COO storage, construction and validation,
// reference SpMV, and per-row statistics.
//
// The compressed sparse row (CSR) layout follows the paper's Figure 1:
// RowPtr holds the offset of each row's first non-zero in ColIdx/Val,
// ColIdx holds column indices in row-major order, and Val the values.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"spmvtune/internal/errdefs"
)

// ErrInvalidMatrix classifies every structural-validation failure in this
// package: errors returned by Validate, the constructors and COO conversion
// all match it via errors.Is. Re-exported from errdefs so callers holding
// only sparse types can classify without another import.
var ErrInvalidMatrix = errdefs.ErrInvalidMatrix

// invalidf builds an ErrInvalidMatrix-classified validation error.
func invalidf(format string, args ...any) error {
	return errdefs.Invalidf("sparse: "+format, args...)
}

// CSR is a sparse matrix in compressed sparse row format.
//
// Invariants (checked by Validate):
//   - len(RowPtr) == Rows+1, RowPtr[0] == 0, RowPtr non-decreasing
//   - RowPtr[Rows] == len(ColIdx) == len(Val)
//   - 0 <= ColIdx[k] < Cols for all k
type CSR struct {
	Rows   int
	Cols   int
	RowPtr []int64
	ColIdx []int32
	Val    []float64
}

// NNZ returns the number of stored non-zero entries.
func (a *CSR) NNZ() int { return len(a.Val) }

// RowLen returns the number of stored entries in row i.
func (a *CSR) RowLen(i int) int { return int(a.RowPtr[i+1] - a.RowPtr[i]) }

// Row returns the column indices and values of row i as sub-slices of the
// matrix storage; callers must not modify their lengths.
func (a *CSR) Row(i int) ([]int32, []float64) {
	lo, hi := a.RowPtr[i], a.RowPtr[i+1]
	return a.ColIdx[lo:hi], a.Val[lo:hi]
}

// Validate checks the CSR structural invariants and returns a descriptive
// error for the first violation found.
func (a *CSR) Validate() error {
	if a.Rows < 0 || a.Cols < 0 {
		return invalidf("negative dimension %dx%d", a.Rows, a.Cols)
	}
	if len(a.RowPtr) != a.Rows+1 {
		return invalidf("len(RowPtr)=%d, want Rows+1=%d", len(a.RowPtr), a.Rows+1)
	}
	if a.RowPtr[0] != 0 {
		return invalidf("RowPtr[0]=%d, want 0", a.RowPtr[0])
	}
	for i := 0; i < a.Rows; i++ {
		if a.RowPtr[i+1] < a.RowPtr[i] {
			return invalidf("RowPtr decreases at row %d (%d -> %d)", i, a.RowPtr[i], a.RowPtr[i+1])
		}
	}
	nnz := a.RowPtr[a.Rows]
	if int64(len(a.ColIdx)) != nnz || int64(len(a.Val)) != nnz {
		return invalidf("RowPtr[Rows]=%d but len(ColIdx)=%d len(Val)=%d", nnz, len(a.ColIdx), len(a.Val))
	}
	for k, c := range a.ColIdx {
		if c < 0 || int(c) >= a.Cols {
			return invalidf("ColIdx[%d]=%d out of range [0,%d)", k, c, a.Cols)
		}
	}
	return nil
}

// HasSortedRows reports whether every row's column indices are strictly
// increasing (no duplicates).
func (a *CSR) HasSortedRows() bool {
	for i := 0; i < a.Rows; i++ {
		cols, _ := a.Row(i)
		for k := 1; k < len(cols); k++ {
			if cols[k] <= cols[k-1] {
				return false
			}
		}
	}
	return true
}

// SortRows sorts each row's entries by column index, keeping values paired.
func (a *CSR) SortRows() {
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		row := csrRowSorter{cols: a.ColIdx[lo:hi], vals: a.Val[lo:hi]}
		sort.Sort(row)
	}
}

type csrRowSorter struct {
	cols []int32
	vals []float64
}

func (r csrRowSorter) Len() int           { return len(r.cols) }
func (r csrRowSorter) Less(i, j int) bool { return r.cols[i] < r.cols[j] }
func (r csrRowSorter) Swap(i, j int) {
	r.cols[i], r.cols[j] = r.cols[j], r.cols[i]
	r.vals[i], r.vals[j] = r.vals[j], r.vals[i]
}

// At returns A[i,j], or 0 if the entry is not stored. Rows need not be
// sorted; the scan is linear in the row length.
func (a *CSR) At(i, j int) float64 {
	cols, vals := a.Row(i)
	for k, c := range cols {
		if int(c) == j {
			return vals[k]
		}
	}
	return 0
}

// Clone returns a deep copy of the matrix.
func (a *CSR) Clone() *CSR {
	b := &CSR{
		Rows:   a.Rows,
		Cols:   a.Cols,
		RowPtr: make([]int64, len(a.RowPtr)),
		ColIdx: make([]int32, len(a.ColIdx)),
		Val:    make([]float64, len(a.Val)),
	}
	copy(b.RowPtr, a.RowPtr)
	copy(b.ColIdx, a.ColIdx)
	copy(b.Val, a.Val)
	return b
}

// Transpose returns the transpose of a as a new CSR matrix with sorted rows.
func (a *CSR) Transpose() *CSR {
	t := &CSR{
		Rows:   a.Cols,
		Cols:   a.Rows,
		RowPtr: make([]int64, a.Cols+1),
		ColIdx: make([]int32, a.NNZ()),
		Val:    make([]float64, a.NNZ()),
	}
	for _, c := range a.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < a.Cols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int64, a.Cols)
	copy(next, t.RowPtr[:a.Cols])
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for k, c := range cols {
			p := next[c]
			next[c]++
			t.ColIdx[p] = int32(i)
			t.Val[p] = vals[k]
		}
	}
	return t
}

// MulVec computes u = A*v sequentially; this is the reference SpMV
// (the paper's Algorithm 1) against which every kernel is checked.
// It panics if len(v) < Cols or len(u) < Rows.
func (a *CSR) MulVec(v, u []float64) {
	if len(v) < a.Cols {
		panic(fmt.Sprintf("sparse: len(v)=%d < Cols=%d", len(v), a.Cols))
	}
	if len(u) < a.Rows {
		panic(fmt.Sprintf("sparse: len(u)=%d < Rows=%d", len(u), a.Rows))
	}
	for i := 0; i < a.Rows; i++ {
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		sum := 0.0
		for k := lo; k < hi; k++ {
			sum += v[a.ColIdx[k]] * a.Val[k]
		}
		u[i] = sum
	}
}

// MulVecTranspose computes u = A^T * v without materializing the
// transpose: it scatters v[i]*row_i into u. Iterative solvers over
// nonsymmetric systems (BiCG and friends) need both products per step, and
// rebuilding A^T each time is exactly the kind of format-conversion cost
// the framework avoids.
func (a *CSR) MulVecTranspose(v, u []float64) {
	if len(v) < a.Rows {
		panic(fmt.Sprintf("sparse: len(v)=%d < Rows=%d", len(v), a.Rows))
	}
	if len(u) < a.Cols {
		panic(fmt.Sprintf("sparse: len(u)=%d < Cols=%d", len(u), a.Cols))
	}
	for j := 0; j < a.Cols; j++ {
		u[j] = 0
	}
	for i := 0; i < a.Rows; i++ {
		x := v[i]
		if x == 0 {
			continue
		}
		lo, hi := a.RowPtr[i], a.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			u[a.ColIdx[k]] += x * a.Val[k]
		}
	}
}

// VecApproxEqual reports whether two vectors agree element-wise within a
// combined absolute/relative tolerance. Parallel reductions reassociate
// floating-point additions, so exact equality is not expected.
func VecApproxEqual(a, b []float64, tol float64) bool {
	return FirstVecDiff(a, b, tol) < 0
}

// FirstVecDiff returns the index of the first element where a and b differ
// by more than tol (absolute or relative), or -1 if they agree. Length
// mismatch reports the shorter length as the differing index.
func FirstVecDiff(a, b []float64, tol float64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		d := math.Abs(a[i] - b[i])
		scale := math.Max(math.Abs(a[i]), math.Abs(b[i]))
		if d > tol && d > tol*scale {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}

// ErrEmptyMatrix is returned by constructors handed zero-dimension input
// where that is not meaningful.
var ErrEmptyMatrix = errors.New("sparse: empty matrix")

// NewCSRFromRows builds a CSR matrix from per-row (column, value) pairs.
// Rows are used as given (not sorted, not deduplicated).
func NewCSRFromRows(rows, cols int, entries [][]Entry) (*CSR, error) {
	if rows < 0 || cols < 0 {
		return nil, invalidf("negative dimension %dx%d", rows, cols)
	}
	if len(entries) != rows {
		return nil, invalidf("got %d row slices, want %d", len(entries), rows)
	}
	a := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int64, rows+1)}
	nnz := 0
	for _, r := range entries {
		nnz += len(r)
	}
	a.ColIdx = make([]int32, 0, nnz)
	a.Val = make([]float64, 0, nnz)
	for i, r := range entries {
		for _, e := range r {
			if e.Col < 0 || e.Col >= cols {
				return nil, invalidf("row %d: column %d out of range [0,%d)", i, e.Col, cols)
			}
			a.ColIdx = append(a.ColIdx, int32(e.Col))
			a.Val = append(a.Val, e.Val)
		}
		a.RowPtr[i+1] = int64(len(a.ColIdx))
	}
	return a, nil
}

// Entry is a single (column, value) pair within a row.
type Entry struct {
	Col int
	Val float64
}

// Figure1 returns the 4x4 example matrix from the paper's Figure 1:
//
//	[1 6 0 0]
//	[3 0 2 0]
//	[0 4 0 0]
//	[0 5 8 1]
func Figure1() *CSR {
	a, err := NewCSRFromRows(4, 4, [][]Entry{
		{{0, 1}, {1, 6}},
		{{0, 3}, {2, 2}},
		{{1, 4}},
		{{1, 5}, {2, 8}, {3, 1}},
	})
	if err != nil {
		panic(err)
	}
	return a
}
