package sparse

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCSRFigure1(t *testing.T) {
	a := Figure1()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	wantPtr := []int64{0, 2, 4, 5, 8}
	wantCol := []int32{0, 1, 0, 2, 1, 1, 2, 3}
	wantVal := []float64{1, 6, 3, 2, 4, 5, 8, 1}
	if !reflect.DeepEqual(a.RowPtr, wantPtr) {
		t.Errorf("RowPtr = %v, want %v", a.RowPtr, wantPtr)
	}
	if !reflect.DeepEqual(a.ColIdx, wantCol) {
		t.Errorf("ColIdx = %v, want %v", a.ColIdx, wantCol)
	}
	if !reflect.DeepEqual(a.Val, wantVal) {
		t.Errorf("Val = %v, want %v", a.Val, wantVal)
	}
}

func TestCSRMulVecFigure1(t *testing.T) {
	a := Figure1()
	v := []float64{1, 2, 3, 4}
	u := make([]float64, 4)
	a.MulVec(v, u)
	// Row dots: [1*1+6*2, 3*1+2*3, 4*2, 5*2+8*3+1*4] = [13, 9, 8, 38]
	want := []float64{13, 9, 8, 38}
	if !reflect.DeepEqual(u, want) {
		t.Errorf("MulVec = %v, want %v", u, want)
	}
}

func TestCSRAt(t *testing.T) {
	a := Figure1()
	cases := []struct {
		i, j int
		want float64
	}{
		{0, 0, 1}, {0, 1, 6}, {0, 2, 0}, {1, 0, 3}, {1, 2, 2},
		{2, 1, 4}, {2, 3, 0}, {3, 1, 5}, {3, 2, 8}, {3, 3, 1},
	}
	for _, c := range cases {
		if got := a.At(c.i, c.j); got != c.want {
			t.Errorf("At(%d,%d) = %v, want %v", c.i, c.j, got, c.want)
		}
	}
}

func TestCSRValidateErrors(t *testing.T) {
	good := Figure1()
	tests := []struct {
		name   string
		mutate func(*CSR)
	}{
		{"short rowptr", func(a *CSR) { a.RowPtr = a.RowPtr[:3] }},
		{"nonzero first", func(a *CSR) { a.RowPtr[0] = 1 }},
		{"decreasing", func(a *CSR) { a.RowPtr[2] = 1 }},
		{"nnz mismatch", func(a *CSR) { a.Val = a.Val[:5] }},
		{"col out of range", func(a *CSR) { a.ColIdx[0] = 99 }},
		{"negative col", func(a *CSR) { a.ColIdx[3] = -1 }},
		{"negative dims", func(a *CSR) { a.Rows = -1 }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			a := good.Clone()
			tc.mutate(a)
			if err := a.Validate(); err == nil {
				t.Error("Validate accepted corrupt matrix")
			}
		})
	}
}

func TestCSRTranspose(t *testing.T) {
	a := Figure1()
	at := a.Transpose()
	if err := at.Validate(); err != nil {
		t.Fatal(err)
	}
	if at.Rows != a.Cols || at.Cols != a.Rows {
		t.Fatalf("transpose dims %dx%d, want %dx%d", at.Rows, at.Cols, a.Cols, a.Rows)
	}
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Errorf("A[%d,%d]=%v but At[%d,%d]=%v", i, j, a.At(i, j), j, i, at.At(j, i))
			}
		}
	}
	// Double transpose must round-trip exactly.
	att := at.Transpose()
	if !reflect.DeepEqual(att.RowPtr, a.RowPtr) || !reflect.DeepEqual(att.ColIdx, a.ColIdx) || !reflect.DeepEqual(att.Val, a.Val) {
		t.Error("transpose twice did not round-trip")
	}
}

func TestCSRSortRows(t *testing.T) {
	a, err := NewCSRFromRows(2, 5, [][]Entry{
		{{4, 4}, {0, 0.5}, {2, 2}},
		{{3, 3}, {1, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.HasSortedRows() {
		t.Fatal("rows unexpectedly sorted before SortRows")
	}
	a.SortRows()
	if !a.HasSortedRows() {
		t.Fatal("rows not sorted after SortRows")
	}
	if a.At(0, 4) != 4 || a.At(0, 0) != 0.5 || a.At(1, 3) != 3 {
		t.Error("SortRows broke (col,val) pairing")
	}
}

func TestNewCSRFromRowsErrors(t *testing.T) {
	if _, err := NewCSRFromRows(-1, 2, nil); err == nil {
		t.Error("accepted negative rows")
	}
	if _, err := NewCSRFromRows(2, 2, [][]Entry{{}}); err == nil {
		t.Error("accepted wrong number of row slices")
	}
	if _, err := NewCSRFromRows(1, 2, [][]Entry{{{5, 1}}}); err == nil {
		t.Error("accepted out-of-range column")
	}
}

func TestVecApproxEqual(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3 + 1e-12}
	if !VecApproxEqual(a, b, 1e-9) {
		t.Error("nearly equal vectors reported different")
	}
	c := []float64{1, 2, 4}
	if VecApproxEqual(a, c, 1e-9) {
		t.Error("different vectors reported equal")
	}
	if got := FirstVecDiff(a, c, 1e-9); got != 2 {
		t.Errorf("FirstVecDiff = %d, want 2", got)
	}
	if got := FirstVecDiff(a, a[:2], 1e-9); got != 2 {
		t.Errorf("FirstVecDiff length mismatch = %d, want 2", got)
	}
	// Relative tolerance: large magnitudes with small relative error.
	d := []float64{1e12}
	e := []float64{1e12 + 1}
	if !VecApproxEqual(d, e, 1e-9) {
		t.Error("relative tolerance not applied")
	}
}

func randomCSR(rng *rand.Rand, rows, cols, maxRowLen int) *CSR {
	entries := make([][]Entry, rows)
	for i := range entries {
		l := rng.Intn(maxRowLen + 1)
		seen := map[int]bool{}
		for k := 0; k < l; k++ {
			c := rng.Intn(cols)
			if seen[c] {
				continue
			}
			seen[c] = true
			entries[i] = append(entries[i], Entry{Col: c, Val: rng.NormFloat64()})
		}
	}
	a, err := NewCSRFromRows(rows, cols, entries)
	if err != nil {
		panic(err)
	}
	a.SortRows()
	return a
}

func TestCSRTransposePropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(40)
		a := randomCSR(rng, rows, cols, 8)
		at := a.Transpose()
		if err := at.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// (A^T)^T == A entry-wise.
		att := at.Transpose()
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if a.At(i, j) != att.At(i, j) {
					t.Fatalf("trial %d: (A^T)^T differs at (%d,%d)", trial, i, j)
				}
			}
		}
	}
}

// Property: for any vectors x,y and matrix A, y^T (A x) == x^T (A^T y).
// This couples MulVec and Transpose through a nontrivial identity.
func TestTransposeAdjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(30)
		cols := 1 + r.Intn(30)
		a := randomCSR(r, rows, cols, 6)
		x := make([]float64, cols)
		y := make([]float64, rows)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		for i := range y {
			y[i] = r.NormFloat64()
		}
		ax := make([]float64, rows)
		a.MulVec(x, ax)
		aty := make([]float64, cols)
		a.Transpose().MulVec(y, aty)
		lhs, rhs := 0.0, 0.0
		for i := range y {
			lhs += y[i] * ax[i]
		}
		for i := range x {
			rhs += x[i] * aty[i]
		}
		diff := lhs - rhs
		if diff < 0 {
			diff = -diff
		}
		scale := 1.0
		if l := lhs; l < 0 {
			l = -l
			if l > scale {
				scale = l
			}
		} else if l > scale {
			scale = l
		}
		return diff <= 1e-9*scale
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMulVecTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 15; trial++ {
		a := randomCSR(rng, 1+rng.Intn(40), 1+rng.Intn(40), 6)
		v := make([]float64, a.Rows)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		want := make([]float64, a.Cols)
		a.Transpose().MulVec(v, want)
		got := make([]float64, a.Cols)
		a.MulVecTranspose(v, got)
		if i := FirstVecDiff(want, got, 1e-12); i >= 0 {
			t.Fatalf("trial %d: transpose SpMV wrong at %d", trial, i)
		}
	}
	// Bounds panics.
	a := Figure1()
	mustPanicT := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanicT("short v", func() { a.MulVecTranspose(make([]float64, 3), make([]float64, 4)) })
	mustPanicT("short u", func() { a.MulVecTranspose(make([]float64, 4), make([]float64, 3)) })
}

func TestMulVecPanics(t *testing.T) {
	a := Figure1()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("short v", func() { a.MulVec(make([]float64, 3), make([]float64, 4)) })
	mustPanic("short u", func() { a.MulVec(make([]float64, 4), make([]float64, 3)) })
}

func TestEmptyMatrix(t *testing.T) {
	a := &CSR{Rows: 0, Cols: 0, RowPtr: []int64{0}}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	a.MulVec(nil, nil) // must not panic
	st := ComputeRowStats(a)
	if st.Max != 0 || st.Mean != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}
