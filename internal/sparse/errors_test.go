package sparse

import (
	"errors"
	"testing"
)

// Every untrusted-input rejection in this package must be typed: callers
// classify with errors.Is(err, ErrInvalidMatrix) across package borders.
func TestInvalidInputErrorsAreTyped(t *testing.T) {
	bad := &CSR{Rows: 2, Cols: 2, RowPtr: []int64{0, 1}, ColIdx: []int32{0}, Val: []float64{1}}
	if err := bad.Validate(); !errors.Is(err, ErrInvalidMatrix) {
		t.Errorf("CSR.Validate: %v is untyped", err)
	}

	if _, err := NewCSRFromRows(-1, 2, nil); !errors.Is(err, ErrInvalidMatrix) {
		t.Errorf("NewCSRFromRows negative rows: %v is untyped", err)
	}
	if _, err := NewCSRFromRows(1, 2, [][]Entry{{{Col: 5, Val: 1}}}); !errors.Is(err, ErrInvalidMatrix) {
		t.Errorf("NewCSRFromRows out-of-range col: %v is untyped", err)
	}

	coo := &COO{Rows: 1, Cols: 1}
	coo.Add(0, 0, 1)
	coo.RowIdx[0] = 7 // out of range
	if err := coo.Validate(); !errors.Is(err, ErrInvalidMatrix) {
		t.Errorf("COO.Validate: %v is untyped", err)
	}
	if _, err := coo.ToCSR(); !errors.Is(err, ErrInvalidMatrix) {
		t.Errorf("COO.ToCSR: %v is untyped", err)
	}

	good := &COO{Rows: 2, Cols: 2}
	good.Add(0, 1, 3)
	a, err := good.ToCSR()
	if err != nil || a.NNZ() != 1 {
		t.Fatalf("well-formed COO rejected: %v", err)
	}
	if err := a.Validate(); err != nil {
		t.Errorf("valid CSR rejected: %v", err)
	}
}
