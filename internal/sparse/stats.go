package sparse

// RowStats summarizes the per-row non-zero distribution of a matrix. These
// are the raw ingredients of the paper's Table I feature parameters.
type RowStats struct {
	Min, Max int     // shortest / longest row (stored entries)
	Mean     float64 // average non-zeros per row
	Variance float64 // population variance of non-zeros per row
}

// ComputeRowStats scans RowPtr once and returns the row-length statistics.
// For an empty matrix all fields are zero.
func ComputeRowStats(a *CSR) RowStats {
	var s RowStats
	if a.Rows == 0 {
		return s
	}
	s.Min = int(a.RowPtr[1] - a.RowPtr[0])
	sum := 0.0
	sumSq := 0.0
	for i := 0; i < a.Rows; i++ {
		l := int(a.RowPtr[i+1] - a.RowPtr[i])
		if l < s.Min {
			s.Min = l
		}
		if l > s.Max {
			s.Max = l
		}
		fl := float64(l)
		sum += fl
		sumSq += fl * fl
	}
	n := float64(a.Rows)
	s.Mean = sum / n
	s.Variance = sumSq/n - s.Mean*s.Mean
	if s.Variance < 0 { // guard tiny negative from cancellation
		s.Variance = 0
	}
	return s
}

// RowLengthHistogram buckets row lengths into the given boundaries and
// returns counts: counts[i] is the number of rows l with
// bounds[i-1] < l <= bounds[i] (bounds[-1] treated as -1); the final extra
// bucket counts rows longer than the last boundary.
//
// The paper's Figure 5 uses this to show ~98.7% of UF-collection rows have
// at most 100 non-zeros.
func RowLengthHistogram(a *CSR, bounds []int) []int64 {
	counts := make([]int64, len(bounds)+1)
	for i := 0; i < a.Rows; i++ {
		l := int(a.RowPtr[i+1] - a.RowPtr[i])
		placed := false
		for b, ub := range bounds {
			if l <= ub {
				counts[b]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(bounds)]++
		}
	}
	return counts
}

// Bandwidth returns the matrix bandwidth: max over stored entries of
// |i - j|. Empty matrices report 0.
func Bandwidth(a *CSR) int {
	bw := 0
	for i := 0; i < a.Rows; i++ {
		cols, _ := a.Row(i)
		for _, c := range cols {
			d := i - int(c)
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
