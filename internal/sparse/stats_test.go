package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestComputeRowStatsFigure1(t *testing.T) {
	// Row lengths: 2, 2, 1, 3.
	s := ComputeRowStats(Figure1())
	if s.Min != 1 || s.Max != 3 {
		t.Errorf("min/max = %d/%d, want 1/3", s.Min, s.Max)
	}
	if s.Mean != 2 {
		t.Errorf("mean = %v, want 2", s.Mean)
	}
	// Population variance of {2,2,1,3} = ((0)+(0)+(1)+(1))/4 = 0.5
	if math.Abs(s.Variance-0.5) > 1e-12 {
		t.Errorf("variance = %v, want 0.5", s.Variance)
	}
}

func TestComputeRowStatsUniform(t *testing.T) {
	// All rows length 4 => variance exactly 0.
	entries := make([][]Entry, 10)
	for i := range entries {
		for j := 0; j < 4; j++ {
			entries[i] = append(entries[i], Entry{Col: j, Val: 1})
		}
	}
	a, _ := NewCSRFromRows(10, 8, entries)
	s := ComputeRowStats(a)
	if s.Variance != 0 || s.Min != 4 || s.Max != 4 || s.Mean != 4 {
		t.Errorf("uniform stats = %+v", s)
	}
}

func TestComputeRowStatsMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		a := randomCSR(rng, 1+rng.Intn(50), 20, 10)
		s := ComputeRowStats(a)
		// Naive two-pass computation.
		mean := 0.0
		for i := 0; i < a.Rows; i++ {
			mean += float64(a.RowLen(i))
		}
		mean /= float64(a.Rows)
		v := 0.0
		for i := 0; i < a.Rows; i++ {
			d := float64(a.RowLen(i)) - mean
			v += d * d
		}
		v /= float64(a.Rows)
		if math.Abs(s.Mean-mean) > 1e-9 || math.Abs(s.Variance-v) > 1e-6*(1+v) {
			t.Fatalf("trial %d: got mean=%v var=%v, want %v/%v", trial, s.Mean, s.Variance, mean, v)
		}
	}
}

func TestRowLengthHistogram(t *testing.T) {
	// Rows of length 2,2,1,3 with bounds {1,2} -> [1, 2, 1].
	got := RowLengthHistogram(Figure1(), []int{1, 2})
	want := []int64{1, 2, 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("histogram = %v, want %v", got, want)
	}
	// Total always equals row count.
	sum := int64(0)
	for _, c := range got {
		sum += c
	}
	if sum != 4 {
		t.Errorf("histogram total = %d, want 4", sum)
	}
}

func TestBandwidth(t *testing.T) {
	if bw := Bandwidth(Figure1()); bw != 2 {
		t.Errorf("Figure1 bandwidth = %d, want 2", bw)
	}
	// Diagonal matrix has bandwidth 0.
	entries := make([][]Entry, 5)
	for i := range entries {
		entries[i] = []Entry{{Col: i, Val: 1}}
	}
	d, _ := NewCSRFromRows(5, 5, entries)
	if bw := Bandwidth(d); bw != 0 {
		t.Errorf("diagonal bandwidth = %d, want 0", bw)
	}
}
