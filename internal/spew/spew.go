// Package spew implements sparse element-wise matrix operations
// ("SpElementWise" — the second kernel family the paper's conclusion says
// the auto-tuning approach generalizes to). C = A op B is computed row by
// row; the per-row workload is len(A.row)+len(B.row) and, as in the SpMV
// framework, rows with different workloads prefer different row-combiner
// implementations:
//
//   - Merge: two-pointer merge of the sorted rows — best for short rows;
//   - Hash: map-based union — tolerant of unsorted rows, best for medium
//     scattered rows;
//   - Dense: scatter into a dense scratch row — amortizes on long rows.
package spew

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"spmvtune/internal/sparse"
)

// Op is the element-wise combiner.
type Op int

const (
	// Add computes A+B (union of patterns).
	Add Op = iota
	// Sub computes A-B (union of patterns).
	Sub
	// Hadamard computes the element-wise product (intersection of patterns).
	Hadamard
)

// String names the op.
func (o Op) String() string {
	switch o {
	case Add:
		return "add"
	case Sub:
		return "sub"
	case Hadamard:
		return "hadamard"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

func (o Op) combine(a, b float64) float64 {
	switch o {
	case Add:
		return a + b
	case Sub:
		return a - b
	default:
		return a * b
	}
}

// Strategy selects a row-combiner implementation.
type Strategy int

const (
	// AutoStrategy picks per row by workload.
	AutoStrategy Strategy = iota
	// Merge uses the sorted two-pointer combiner.
	Merge
	// Hash uses a map union.
	Hash
	// Dense scatters into a dense scratch row.
	Dense
)

const (
	mergeMax = 64
	hashMax  = 2048
)

func strategyFor(workload int) Strategy {
	switch {
	case workload <= mergeMax:
		return Merge
	case workload <= hashMax:
		return Hash
	default:
		return Dense
	}
}

// Apply computes C = A op B in parallel. Both operands must have identical
// dimensions and sorted rows (as produced by COO.ToCSR or the generators).
func Apply(op Op, a, b *sparse.CSR, workers int) (*sparse.CSR, error) {
	return ApplyStrategy(op, a, b, AutoStrategy, workers)
}

// ApplyStrategy forces one combiner implementation (AutoStrategy restores
// per-row selection); exposed for the ablation benchmarks.
func ApplyStrategy(op Op, a, b *sparse.CSR, st Strategy, workers int) (*sparse.CSR, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("spew: dimension mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	rows := make([][]sparse.Entry, a.Rows)
	w := workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > a.Rows {
		w = a.Rows
	}
	if w < 1 {
		w = 1
	}
	var wg sync.WaitGroup
	for p := 0; p < w; p++ {
		lo := a.Rows * p / w
		hi := a.Rows * (p + 1) / w
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sc := newScratch(a.Cols)
			for i := lo; i < hi; i++ {
				s := st
				if s == AutoStrategy {
					s = strategyFor(a.RowLen(i) + b.RowLen(i))
				}
				rows[i] = sc.combineRow(op, a, b, i, s)
			}
		}(lo, hi)
	}
	wg.Wait()

	c := &sparse.CSR{Rows: a.Rows, Cols: a.Cols, RowPtr: make([]int64, a.Rows+1)}
	nnz := 0
	for _, r := range rows {
		nnz += len(r)
	}
	c.ColIdx = make([]int32, 0, nnz)
	c.Val = make([]float64, 0, nnz)
	for i, r := range rows {
		for _, e := range r {
			c.ColIdx = append(c.ColIdx, int32(e.Col))
			c.Val = append(c.Val, e.Val)
		}
		c.RowPtr[i+1] = int64(len(c.ColIdx))
	}
	return c, nil
}

type scratch struct {
	aDense  []float64
	bDense  []float64
	inA     []bool
	inB     []bool
	touched []int32
}

func newScratch(cols int) *scratch {
	return &scratch{
		aDense: make([]float64, cols),
		bDense: make([]float64, cols),
		inA:    make([]bool, cols),
		inB:    make([]bool, cols),
	}
}

// emit applies the op given presence flags; union ops emit when either
// side is present, Hadamard only when both are.
func emit(op Op, va, vb float64, inA, inB bool) (float64, bool) {
	switch op {
	case Hadamard:
		if inA && inB {
			return va * vb, true
		}
		return 0, false
	default:
		if !inA && !inB {
			return 0, false
		}
		return op.combine(va, vb), true
	}
}

func (sc *scratch) combineRow(op Op, a, b *sparse.CSR, i int, st Strategy) []sparse.Entry {
	aCols, aVals := a.Row(i)
	bCols, bVals := b.Row(i)
	switch st {
	case Merge:
		out := make([]sparse.Entry, 0, len(aCols)+len(bCols))
		x, y := 0, 0
		for x < len(aCols) || y < len(bCols) {
			switch {
			case y >= len(bCols) || (x < len(aCols) && aCols[x] < bCols[y]):
				if v, ok := emit(op, aVals[x], 0, true, false); ok {
					out = append(out, sparse.Entry{Col: int(aCols[x]), Val: v})
				}
				x++
			case x >= len(aCols) || bCols[y] < aCols[x]:
				if v, ok := emit(op, 0, bVals[y], false, true); ok {
					out = append(out, sparse.Entry{Col: int(bCols[y]), Val: v})
				}
				y++
			default:
				if v, ok := emit(op, aVals[x], bVals[y], true, true); ok {
					out = append(out, sparse.Entry{Col: int(aCols[x]), Val: v})
				}
				x++
				y++
			}
		}
		return out

	case Hash:
		type pv struct {
			va, vb   float64
			inA, inB bool
		}
		m := make(map[int32]pv, len(aCols)+len(bCols))
		for k, c := range aCols {
			e := m[c]
			e.va, e.inA = aVals[k], true
			m[c] = e
		}
		for k, c := range bCols {
			e := m[c]
			e.vb, e.inB = bVals[k], true
			m[c] = e
		}
		out := make([]sparse.Entry, 0, len(m))
		for c, e := range m {
			if v, ok := emit(op, e.va, e.vb, e.inA, e.inB); ok {
				out = append(out, sparse.Entry{Col: int(c), Val: v})
			}
		}
		sort.Slice(out, func(p, q int) bool { return out[p].Col < out[q].Col })
		return out

	default: // Dense
		sc.touched = sc.touched[:0]
		for k, c := range aCols {
			sc.aDense[c] = aVals[k]
			sc.inA[c] = true
			sc.touched = append(sc.touched, c)
		}
		for k, c := range bCols {
			sc.bDense[c] = bVals[k]
			if !sc.inB[c] && !sc.inA[c] {
				sc.touched = append(sc.touched, c)
			}
			sc.inB[c] = true
		}
		sort.Slice(sc.touched, func(p, q int) bool { return sc.touched[p] < sc.touched[q] })
		out := make([]sparse.Entry, 0, len(sc.touched))
		for _, c := range sc.touched {
			if v, ok := emit(op, sc.aDense[c], sc.bDense[c], sc.inA[c], sc.inB[c]); ok {
				out = append(out, sparse.Entry{Col: int(c), Val: v})
			}
			sc.aDense[c], sc.bDense[c] = 0, 0
			sc.inA[c], sc.inB[c] = false, false
		}
		return out
	}
}
