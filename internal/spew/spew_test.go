package spew

import (
	"math"
	"math/rand"
	"testing"

	"spmvtune/internal/matgen"
	"spmvtune/internal/sparse"
)

func denseApply(op Op, a, b *sparse.CSR) [][]float64 {
	out := make([][]float64, a.Rows)
	da := make([][]float64, a.Rows)
	db := make([][]float64, a.Rows)
	pa := make([][]bool, a.Rows)
	pb := make([][]bool, a.Rows)
	for i := 0; i < a.Rows; i++ {
		da[i] = make([]float64, a.Cols)
		db[i] = make([]float64, a.Cols)
		pa[i] = make([]bool, a.Cols)
		pb[i] = make([]bool, a.Cols)
		cols, vals := a.Row(i)
		for k := range cols {
			da[i][cols[k]] = vals[k]
			pa[i][cols[k]] = true
		}
		cols, vals = b.Row(i)
		for k := range cols {
			db[i][cols[k]] = vals[k]
			pb[i][cols[k]] = true
		}
		out[i] = make([]float64, a.Cols)
		for j := 0; j < a.Cols; j++ {
			if v, ok := emit(op, da[i][j], db[i][j], pa[i][j], pb[i][j]); ok {
				out[i][j] = v
			}
		}
	}
	return out
}

func checkDense(t *testing.T, name string, c *sparse.CSR, want [][]float64, op Op, a, b *sparse.CSR) {
	t.Helper()
	if err := c.Validate(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !c.HasSortedRows() {
		t.Fatalf("%s: rows unsorted", name)
	}
	for i := range want {
		for j := range want[i] {
			got := c.At(i, j)
			if math.Abs(got-want[i][j]) > 1e-12 {
				t.Fatalf("%s: C[%d,%d] = %v, want %v", name, i, j, got, want[i][j])
			}
		}
	}
	// Pattern check: Hadamard result must be within the intersection.
	if op == Hadamard {
		for i := 0; i < c.Rows; i++ {
			cols, _ := c.Row(i)
			for _, cc := range cols {
				if a.At(i, int(cc)) == 0 && b.At(i, int(cc)) == 0 {
					t.Fatalf("%s: Hadamard emitted outside both patterns", name)
				}
			}
		}
	}
}

func TestAllOpsAndStrategiesMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		rows := 1 + rng.Intn(60)
		cols := 1 + rng.Intn(60)
		a := matgen.RandomUniform(rows, cols, 0, 6, rng.Int63())
		b := matgen.RandomUniform(rows, cols, 0, 6, rng.Int63())
		for _, op := range []Op{Add, Sub, Hadamard} {
			want := denseApply(op, a, b)
			for _, st := range []Strategy{AutoStrategy, Merge, Hash, Dense} {
				for _, w := range []int{1, 4} {
					c, err := ApplyStrategy(op, a, b, st, w)
					if err != nil {
						t.Fatal(err)
					}
					checkDense(t, op.String(), c, want, op, a, b)
				}
			}
		}
	}
}

// Linearity property: (A+B)v == Av + Bv couples spew with SpMV.
func TestAddLinearity(t *testing.T) {
	a := matgen.PowerLaw(400, 4, 1.9, 100, 2)
	b := matgen.Banded(400, 5, 3)
	c, err := Apply(Add, a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	v := make([]float64, a.Cols)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	av := make([]float64, a.Rows)
	bv := make([]float64, a.Rows)
	cv := make([]float64, a.Rows)
	a.MulVec(v, av)
	b.MulVec(v, bv)
	c.MulVec(v, cv)
	for i := range av {
		av[i] += bv[i]
	}
	if i := sparse.FirstVecDiff(av, cv, 1e-9); i >= 0 {
		t.Fatalf("(A+B)v != Av+Bv at row %d", i)
	}
}

func TestSubSelfIsZero(t *testing.T) {
	a := matgen.RoadNetwork(300, 5)
	c, err := Apply(Sub, a, a, 2)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range c.Val {
		if v != 0 {
			t.Fatalf("A-A has nonzero value %v at %d", v, k)
		}
	}
	// Pattern is the union (= A's own), values all zero.
	if c.NNZ() != a.NNZ() {
		t.Errorf("A-A pattern %d, want %d", c.NNZ(), a.NNZ())
	}
}

func TestHadamardDiagonalMask(t *testing.T) {
	a := matgen.Banded(100, 5, 6)
	d := matgen.Diagonal(100, 7)
	c, err := Apply(Hadamard, a, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Intersection with the diagonal keeps only diagonal entries.
	for i := 0; i < c.Rows; i++ {
		cols, _ := c.Row(i)
		for _, cc := range cols {
			if int(cc) != i {
				t.Fatalf("Hadamard with diagonal kept off-diagonal (%d,%d)", i, cc)
			}
		}
	}
}

func TestDimensionMismatch(t *testing.T) {
	a := matgen.Banded(10, 3, 1)
	b := matgen.Banded(11, 3, 2)
	if _, err := Apply(Add, a, b, 1); err == nil {
		t.Error("mismatched dims accepted")
	}
}

func TestStrategyThresholdsAndNames(t *testing.T) {
	if strategyFor(1) != Merge || strategyFor(mergeMax) != Merge {
		t.Error("short rows should merge")
	}
	if strategyFor(mergeMax+1) != Hash || strategyFor(hashMax) != Hash {
		t.Error("medium rows should hash")
	}
	if strategyFor(hashMax+1) != Dense {
		t.Error("long rows should go dense")
	}
	for _, o := range []Op{Add, Sub, Hadamard, Op(9)} {
		if o.String() == "" {
			t.Error("empty op name")
		}
	}
}

func TestEmptyMatrices(t *testing.T) {
	e := &sparse.CSR{Rows: 4, Cols: 4, RowPtr: []int64{0, 0, 0, 0, 0}}
	a := matgen.Diagonal(4, 1)
	c, err := Apply(Add, a, e, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 4 {
		t.Errorf("A+0 lost entries: %d", c.NNZ())
	}
	h, err := Apply(Hadamard, a, e, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.NNZ() != 0 {
		t.Errorf("A∘0 should be empty, got %d", h.NNZ())
	}
}
