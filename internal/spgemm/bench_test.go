package spgemm

import (
	"testing"

	"spmvtune/internal/matgen"
	"spmvtune/internal/sparse"
)

// Strategy ablation on light (graph^2) and heavy (FEM^2) workloads: the
// thresholds in strategyFor are justified by these curves.

func lightPair() (*sparse.CSR, *sparse.CSR) {
	a := matgen.RoadNetwork(20000, 1)
	return a, a
}

func heavyPair() (*sparse.CSR, *sparse.CSR) {
	a := matgen.BlockFEM(600, 120, 20, 2)
	return a, a
}

func benchStrategy(b *testing.B, s Strategy, pair func() (*sparse.CSR, *sparse.CSR)) {
	b.Helper()
	x, y := pair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MulStrategy(x, y, s, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpGeMMLightSort(b *testing.B)  { benchStrategy(b, Sort, lightPair) }
func BenchmarkSpGeMMLightHash(b *testing.B)  { benchStrategy(b, Hash, lightPair) }
func BenchmarkSpGeMMLightDense(b *testing.B) { benchStrategy(b, Dense, lightPair) }
func BenchmarkSpGeMMLightAuto(b *testing.B)  { benchStrategy(b, Auto, lightPair) }
func BenchmarkSpGeMMHeavySort(b *testing.B)  { benchStrategy(b, Sort, heavyPair) }
func BenchmarkSpGeMMHeavyHash(b *testing.B)  { benchStrategy(b, Hash, heavyPair) }
func BenchmarkSpGeMMHeavyDense(b *testing.B) { benchStrategy(b, Dense, heavyPair) }
func BenchmarkSpGeMMHeavyAuto(b *testing.B)  { benchStrategy(b, Auto, heavyPair) }

func BenchmarkSpGeMMFlops(b *testing.B) {
	x, y := lightPair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Flops(x, y)
	}
}
