// Package spgemm applies the paper's binning-plus-kernel-selection idea to
// sparse matrix-matrix multiplication, the first of the "other sparse
// matrix applications (e.g., SpGeMM, SpElementWise)" the conclusion says
// the approach generalizes to — and the subject of the hybrid-binning work
// (Liu et al.) the paper cites.
//
// C = A*B is computed row-wise (Gustavson): row i of C accumulates
// val(i,k) * B[k,:] over the non-zeros of A's row i. The per-row workload
// is its FLOP count, rows are binned by workload exactly like the SpMV
// framework, and each bin picks the accumulator implementation that suits
// its rows:
//
//   - Sort: gather all partial products and sort-merge — lowest constant,
//     wins on very light rows;
//   - Hash: map accumulator — wins on medium rows with scattered columns;
//   - Dense: a sparse accumulator (SPA) over a dense scratch row — wins on
//     heavy rows, where O(cols) reset amortizes.
package spgemm

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"spmvtune/internal/binning"
	"spmvtune/internal/sparse"
)

// Strategy selects a per-row accumulator implementation.
type Strategy int

const (
	// Auto picks a strategy per workload bin (the framework behaviour).
	Auto Strategy = iota
	// Sort gathers and sort-merges partial products.
	Sort
	// Hash accumulates in a map.
	Hash
	// Dense uses a dense sparse-accumulator scratch row.
	Dense
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Sort:
		return "sort"
	case Hash:
		return "hash"
	case Dense:
		return "dense"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Flops returns the per-row FLOP workload of C = A*B: flops[i] is the sum
// of B-row lengths over A's row i — the SpGeMM analogue of "number of
// non-zeros per row" in Algorithm 2's step 1.
func Flops(a, b *sparse.CSR) []int64 {
	out := make([]int64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		cols, _ := a.Row(i)
		var f int64
		for _, k := range cols {
			f += b.RowPtr[k+1] - b.RowPtr[k]
		}
		out[i] = f
	}
	return out
}

// thresholds between strategies, in FLOPs per row (heuristics validated by
// BenchmarkSpGeMMStrategies).
const (
	sortMax = 32
	hashMax = 1024
)

func strategyFor(flops int64) Strategy {
	switch {
	case flops <= sortMax:
		return Sort
	case flops <= hashMax:
		return Hash
	default:
		return Dense
	}
}

// Mul computes C = A*B with the auto-binned strategy on `workers`
// goroutines (workers <= 0 selects GOMAXPROCS). It returns an error on a
// dimension mismatch.
func Mul(a, b *sparse.CSR, workers int) (*sparse.CSR, error) {
	return MulStrategy(a, b, Auto, workers)
}

// MulStrategy computes C = A*B forcing one accumulator strategy everywhere
// (Auto restores per-bin selection). Exposed for the ablation benchmarks.
func MulStrategy(a, b *sparse.CSR, s Strategy, workers int) (*sparse.CSR, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("spgemm: dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	flops := Flops(a, b)
	rows := make([][]sparse.Entry, a.Rows)

	w := workersOf(workers, a.Rows)
	var wg sync.WaitGroup
	for p := 0; p < w; p++ {
		lo := a.Rows * p / w
		hi := a.Rows * (p + 1) / w
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			acc := newAccumulators(b.Cols)
			for i := lo; i < hi; i++ {
				st := s
				if st == Auto {
					st = strategyFor(flops[i])
				}
				rows[i] = acc.multiplyRow(a, b, i, st)
			}
		}(lo, hi)
	}
	wg.Wait()

	c := &sparse.CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int64, a.Rows+1)}
	nnz := 0
	for _, r := range rows {
		nnz += len(r)
	}
	c.ColIdx = make([]int32, 0, nnz)
	c.Val = make([]float64, 0, nnz)
	for i, r := range rows {
		for _, e := range r {
			c.ColIdx = append(c.ColIdx, int32(e.Col))
			c.Val = append(c.Val, e.Val)
		}
		c.RowPtr[i+1] = int64(len(c.ColIdx))
	}
	return c, nil
}

func workersOf(w, rows int) int {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > rows {
		w = rows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// accumulators carries the per-goroutine scratch for all three strategies.
type accumulators struct {
	dense   []float64
	seen    []bool // occupancy markers (values may cancel to exactly 0)
	touched []int32
	pairs   []sparse.Entry
}

func newAccumulators(cols int) *accumulators {
	return &accumulators{dense: make([]float64, cols), seen: make([]bool, cols)}
}

// multiplyRow computes one C row with the chosen strategy, returning
// entries sorted by column.
func (ac *accumulators) multiplyRow(a, b *sparse.CSR, i int, st Strategy) []sparse.Entry {
	aCols, aVals := a.Row(i)
	if len(aCols) == 0 {
		return nil
	}
	switch st {
	case Sort:
		ac.pairs = ac.pairs[:0]
		for t, k := range aCols {
			bCols, bVals := b.Row(int(k))
			for j := range bCols {
				ac.pairs = append(ac.pairs, sparse.Entry{Col: int(bCols[j]), Val: aVals[t] * bVals[j]})
			}
		}
		sort.Slice(ac.pairs, func(x, y int) bool { return ac.pairs[x].Col < ac.pairs[y].Col })
		out := make([]sparse.Entry, 0, len(ac.pairs))
		for _, e := range ac.pairs {
			if n := len(out); n > 0 && out[n-1].Col == e.Col {
				out[n-1].Val += e.Val
				continue
			}
			out = append(out, e)
		}
		return out

	case Hash:
		m := make(map[int32]float64, 2*len(aCols))
		for t, k := range aCols {
			bCols, bVals := b.Row(int(k))
			for j := range bCols {
				m[bCols[j]] += aVals[t] * bVals[j]
			}
		}
		out := make([]sparse.Entry, 0, len(m))
		for c, v := range m {
			out = append(out, sparse.Entry{Col: int(c), Val: v})
		}
		sort.Slice(out, func(x, y int) bool { return out[x].Col < out[y].Col })
		return out

	default: // Dense SPA
		ac.touched = ac.touched[:0]
		for t, k := range aCols {
			bCols, bVals := b.Row(int(k))
			for j, c := range bCols {
				if !ac.seen[c] {
					ac.seen[c] = true
					ac.touched = append(ac.touched, c)
				}
				ac.dense[c] += aVals[t] * bVals[j]
			}
		}
		sort.Slice(ac.touched, func(x, y int) bool { return ac.touched[x] < ac.touched[y] })
		out := make([]sparse.Entry, 0, len(ac.touched))
		for _, c := range ac.touched {
			out = append(out, sparse.Entry{Col: int(c), Val: ac.dense[c]})
			ac.dense[c] = 0
			ac.seen[c] = false
		}
		return out
	}
}

// MulBinned computes C = A*B with the paper's full pattern: rows are
// FLOP-binned at granularity u (Algorithm 2 transplanted), every bin picks
// one accumulator strategy from its per-row average workload, and bins
// execute over the worker pool. Per-bin selection amortizes the strategy
// dispatch and mirrors how the SpMV framework assigns one kernel per bin;
// Mul's per-row Auto remains the finer-grained alternative.
func MulBinned(a, b *sparse.CSR, u, maxBins, workers int) (*sparse.CSR, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("spgemm: dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	bn := BinRows(a, b, u, maxBins)
	flops := Flops(a, b)
	rows := make([][]sparse.Entry, a.Rows)

	w := workersOf(workers, a.Rows)
	type task struct {
		g  binning.Group
		st Strategy
	}
	var tasks []task
	for binID := range bn.Bins {
		for _, g := range bn.Bins[binID] {
			var wl int64
			for i := g.Start; i < g.Start+g.Count; i++ {
				wl += flops[i]
			}
			avg := wl / int64(g.Count)
			tasks = append(tasks, task{g: g, st: strategyFor(avg)})
		}
	}
	var wg sync.WaitGroup
	for p := 0; p < w; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			acc := newAccumulators(b.Cols)
			for ti := p; ti < len(tasks); ti += w {
				t := tasks[ti]
				for i := t.g.Start; i < t.g.Start+t.g.Count; i++ {
					rows[i] = acc.multiplyRow(a, b, int(i), t.st)
				}
			}
		}(p)
	}
	wg.Wait()

	c := &sparse.CSR{Rows: a.Rows, Cols: b.Cols, RowPtr: make([]int64, a.Rows+1)}
	nnz := 0
	for _, r := range rows {
		nnz += len(r)
	}
	c.ColIdx = make([]int32, 0, nnz)
	c.Val = make([]float64, 0, nnz)
	for i, r := range rows {
		for _, e := range r {
			c.ColIdx = append(c.ColIdx, int32(e.Col))
			c.Val = append(c.Val, e.Val)
		}
		c.RowPtr[i+1] = int64(len(c.ColIdx))
	}
	return c, nil
}

// BinRows groups matrix rows by FLOP workload using the SpMV framework's
// coarse binning machinery (virtual rows of u adjacent rows, bin =
// workload/u) — the exact transplant of Algorithm 2 onto SpGeMM.
func BinRows(a, b *sparse.CSR, u, maxBins int) *binning.Binning {
	if u < 1 {
		u = 1
	}
	if maxBins <= 0 {
		maxBins = binning.DefaultMaxBins
	}
	flops := Flops(a, b)
	bn := &binning.Binning{Scheme: "coarse", U: u, Bins: make([][]binning.Group, maxBins), M: a.Rows}
	for lo := 0; lo < a.Rows; lo += u {
		hi := lo + u
		if hi > a.Rows {
			hi = a.Rows
		}
		var wl int64
		for i := lo; i < hi; i++ {
			wl += flops[i]
		}
		binID := int(wl / int64(u))
		if binID >= maxBins {
			binID = maxBins - 1
		}
		bn.Bins[binID] = append(bn.Bins[binID], binning.Group{Start: int32(lo), Count: int32(hi - lo)})
	}
	return bn
}
