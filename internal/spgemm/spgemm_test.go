package spgemm

import (
	"math"
	"math/rand"
	"testing"

	"spmvtune/internal/matgen"
	"spmvtune/internal/sparse"
)

// denseMul is the brute-force reference.
func denseMul(a, b *sparse.CSR) [][]float64 {
	c := make([][]float64, a.Rows)
	for i := range c {
		c[i] = make([]float64, b.Cols)
		aCols, aVals := a.Row(i)
		for t, k := range aCols {
			bCols, bVals := b.Row(int(k))
			for j := range bCols {
				c[i][bCols[j]] += aVals[t] * bVals[j]
			}
		}
	}
	return c
}

func checkAgainstDense(t *testing.T, name string, c *sparse.CSR, want [][]float64) {
	t.Helper()
	if !c.HasSortedRows() {
		t.Fatalf("%s: result rows not sorted", name)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for i := range want {
		for j := range want[i] {
			got := c.At(i, j)
			if math.Abs(got-want[i][j]) > 1e-9*(1+math.Abs(want[i][j])) {
				t.Fatalf("%s: C[%d,%d] = %v, want %v", name, i, j, got, want[i][j])
			}
		}
	}
}

func TestAllStrategiesMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		m := 1 + rng.Intn(40)
		k := 1 + rng.Intn(40)
		n := 1 + rng.Intn(40)
		a := matgen.RandomUniform(m, k, 0, 5, rng.Int63())
		b := matgen.RandomUniform(k, n, 0, 5, rng.Int63())
		want := denseMul(a, b)
		for _, s := range []Strategy{Auto, Sort, Hash, Dense} {
			for _, w := range []int{1, 3} {
				c, err := MulStrategy(a, b, s, w)
				if err != nil {
					t.Fatal(err)
				}
				checkAgainstDense(t, s.String(), c, want)
			}
		}
	}
}

func TestIdentityAndAssociativityWithSpMV(t *testing.T) {
	a := matgen.PowerLaw(200, 4, 1.8, 80, 2)
	id := matgen.Diagonal(a.Cols, 3)
	// Force identity values to 1.
	for i := range id.Val {
		id.Val[i] = 1
	}
	c, err := Mul(a, id, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A*I == A entry-wise.
	for i := 0; i < a.Rows; i++ {
		cols, vals := a.Row(i)
		for ti := range cols {
			if got := c.At(i, int(cols[ti])); got != vals[ti] {
				t.Fatalf("A*I differs at (%d,%d)", i, cols[ti])
			}
		}
	}
	if c.NNZ() != a.NNZ() {
		t.Fatalf("A*I has %d nnz, want %d", c.NNZ(), a.NNZ())
	}

	// Property: (A*B)x == A*(Bx) for random x.
	b := matgen.RandomUniform(a.Cols, 150, 0, 4, 5)
	ab, err := Mul(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, b.Cols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	bx := make([]float64, b.Rows)
	b.MulVec(x, bx)
	want := make([]float64, a.Rows)
	a.MulVec(bx, want)
	got := make([]float64, ab.Rows)
	ab.MulVec(x, got)
	if i := sparse.FirstVecDiff(want, got, 1e-9); i >= 0 {
		t.Fatalf("(AB)x != A(Bx) at row %d", i)
	}
}

func TestDimensionMismatch(t *testing.T) {
	a := matgen.Banded(10, 3, 1)
	b := matgen.Banded(11, 3, 2)
	if _, err := Mul(a, b, 1); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestCancellationInDenseSPA(t *testing.T) {
	// Row of A multiplies B rows that cancel exactly at one column and then
	// re-add: the SPA must not emit duplicate columns.
	a, _ := sparse.NewCSRFromRows(1, 3, [][]sparse.Entry{
		{{Col: 0, Val: 1}, {Col: 1, Val: 1}, {Col: 2, Val: 1}},
	})
	b, _ := sparse.NewCSRFromRows(3, 2, [][]sparse.Entry{
		{{Col: 0, Val: 1}},  // +1 at col 0
		{{Col: 0, Val: -1}}, // cancels col 0 to exactly 0
		{{Col: 0, Val: 2}},  // re-adds col 0
	})
	c, err := MulStrategy(a, b, Dense, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.NNZ() != 1 || c.At(0, 0) != 2 {
		t.Fatalf("cancellation handled wrongly: nnz=%d val=%v", c.NNZ(), c.At(0, 0))
	}
	// All strategies must agree on this adversarial case.
	for _, s := range []Strategy{Sort, Hash, Auto} {
		cs, err := MulStrategy(a, b, s, 1)
		if err != nil {
			t.Fatal(err)
		}
		if cs.At(0, 0) != 2 {
			t.Errorf("%s: C[0,0] = %v, want 2", s, cs.At(0, 0))
		}
	}
}

func TestFlops(t *testing.T) {
	// A row with links to B rows of lengths 2 and 3 has 5 flops.
	a, _ := sparse.NewCSRFromRows(2, 2, [][]sparse.Entry{
		{{Col: 0, Val: 1}, {Col: 1, Val: 1}},
		{},
	})
	b, _ := sparse.NewCSRFromRows(2, 4, [][]sparse.Entry{
		{{Col: 0, Val: 1}, {Col: 1, Val: 1}},
		{{Col: 0, Val: 1}, {Col: 2, Val: 1}, {Col: 3, Val: 1}},
	})
	f := Flops(a, b)
	if f[0] != 5 || f[1] != 0 {
		t.Errorf("Flops = %v, want [5 0]", f)
	}
}

func TestStrategyForThresholds(t *testing.T) {
	if strategyFor(1) != Sort || strategyFor(sortMax) != Sort {
		t.Error("light rows should sort")
	}
	if strategyFor(sortMax+1) != Hash || strategyFor(hashMax) != Hash {
		t.Error("medium rows should hash")
	}
	if strategyFor(hashMax+1) != Dense {
		t.Error("heavy rows should use the dense SPA")
	}
	if Auto.String() != "auto" || Strategy(99).String() == "" {
		t.Error("String() incomplete")
	}
}

func TestBinRowsPartition(t *testing.T) {
	a := matgen.Mixed(500, 500, 50, []int{2, 40}, 9)
	b := matgen.RandomUniform(500, 500, 2, 6, 10)
	bn := BinRows(a, b, 10, 0)
	if err := bn.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(bn.NonEmpty()) < 2 {
		t.Errorf("mixed flops should span >=2 bins, got %v", bn.NonEmpty())
	}
}

func TestEmptyOperands(t *testing.T) {
	empty := &sparse.CSR{Rows: 0, Cols: 5, RowPtr: []int64{0}}
	b := matgen.Banded(5, 3, 1)
	c, err := Mul(empty, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows != 0 || c.NNZ() != 0 {
		t.Error("empty A should give empty C")
	}
	// A with empty rows only.
	zeros := &sparse.CSR{Rows: 3, Cols: 5, RowPtr: []int64{0, 0, 0, 0}}
	c2, err := Mul(zeros, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NNZ() != 0 || c2.Rows != 3 {
		t.Error("zero A should give structurally empty C")
	}
}

func TestMulBinnedMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		m := 20 + rng.Intn(200)
		a := matgen.Mixed(m, m, 16, []int{2, 30}, rng.Int63())
		b := matgen.RandomUniform(m, m, 1, 5, rng.Int63())
		want, err := Mul(a, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 4} {
			got, err := MulBinned(a, b, 10, 0, w)
			if err != nil {
				t.Fatal(err)
			}
			if got.NNZ() != want.NNZ() {
				t.Fatalf("trial %d w=%d: nnz %d vs %d", trial, w, got.NNZ(), want.NNZ())
			}
			for k := range want.Val {
				if got.ColIdx[k] != want.ColIdx[k] || math.Abs(got.Val[k]-want.Val[k]) > 1e-9 {
					t.Fatalf("trial %d w=%d: entry %d differs", trial, w, k)
				}
			}
		}
	}
	if _, err := MulBinned(matgen.Banded(5, 3, 1), matgen.Banded(6, 3, 2), 10, 0, 1); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestParallelDeterminism(t *testing.T) {
	a := matgen.PowerLaw(300, 5, 1.8, 100, 11)
	b := matgen.RandomUniform(300, 300, 1, 6, 12)
	c1, err := Mul(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	c8, err := Mul(a, b, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c1.NNZ() != c8.NNZ() {
		t.Fatalf("worker count changed structure: %d vs %d", c1.NNZ(), c8.NNZ())
	}
	for k := range c1.Val {
		if c1.ColIdx[k] != c8.ColIdx[k] || c1.Val[k] != c8.Val[k] {
			t.Fatal("worker count changed result")
		}
	}
}
