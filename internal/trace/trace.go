// Package trace emits the auto-tuning pipeline's execution as JSONL spans:
// one JSON object per line, one span per pipeline phase (features →
// predict-u → bin → predict-kernel → execute-bin). Spans carry the modeled
// device metrics of the phase they describe, so a trace answers "why did
// the model pick this kernel for that bin, and what did the launch cost"
// from the artifact alone.
//
// The package is a leaf: it depends only on the standard library, so every
// layer (hsa, core, server, CLIs) can emit spans without import cycles.
//
// Determinism contract: a Writer built with NewDeterministicWriter never
// consults the host clock, and encoding/json sorts attribute keys, so the
// same pipeline run emits byte-identical output every time. That property
// is what lets CI diff traces across runs; the wall-clock Writer adds
// startUnixNs/wallNs for humans and keeps everything else identical.
package trace

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one phase of a pipeline execution. The zero values of the
// optional fields are omitted from the wire form, so deterministic traces
// simply never populate the clock-derived fields.
type Span struct {
	// Trace groups the spans of one request/run; empty for untagged runs.
	Trace string `json:"trace,omitempty"`
	// Name is the phase: "features", "predict-u", "bin", "predict-kernel",
	// "execute-bin", or a caller-defined phase.
	Name string `json:"name"`
	// Seq orders spans within one Writer (monotonic, starts at 0).
	Seq int64 `json:"seq"`
	// StartUnixNs is the host start time; absent in deterministic mode.
	StartUnixNs int64 `json:"startUnixNs,omitempty"`
	// WallNs is the host wall time; absent in deterministic mode.
	WallNs int64 `json:"wallNs,omitempty"`
	// Attrs are the phase's measurements (modeled cycles, chosen U, bin
	// id, counters...). json.Marshal sorts the keys, keeping the wire
	// form deterministic.
	Attrs map[string]any `json:"attrs,omitempty"`
}

// Writer serializes spans as JSONL to an io.Writer. It is safe for
// concurrent use; each Emit writes exactly one line.
type Writer struct {
	mu  sync.Mutex
	w   io.Writer
	seq int64
	// now is nil in deterministic mode: no clock is ever read and the
	// clock-derived span fields stay zero (and are omitted from JSON).
	now func() time.Time
}

// NewWriter returns a wall-clock Writer: spans carry startUnixNs/wallNs.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: w, now: time.Now}
}

// NewDeterministicWriter returns a Writer that never reads the host clock:
// two identical pipeline runs produce byte-identical output.
func NewDeterministicWriter(w io.Writer) *Writer {
	return &Writer{w: w}
}

// Deterministic reports whether this writer suppresses clock-derived
// fields.
func (t *Writer) Deterministic() bool { return t == nil || t.now == nil }

// Now returns the current time for span timing, or the zero time in
// deterministic mode. Callers pass the result to Emit as start.
func (t *Writer) Now() time.Time {
	if t == nil || t.now == nil {
		return time.Time{}
	}
	return t.now()
}

// Emit writes one span. start is the phase's begin time as returned by
// Now; in deterministic mode (or when start is zero) the clock fields are
// left out. Emit is a no-op on a nil Writer, so call sites need no guard.
func (t *Writer) Emit(traceID, name string, start time.Time, attrs map[string]any) {
	if t == nil {
		return
	}
	s := Span{Trace: traceID, Name: name, Attrs: attrs}
	if t.now != nil && !start.IsZero() {
		s.StartUnixNs = start.UnixNano()
		s.WallNs = t.now().Sub(start).Nanoseconds()
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	s.Seq = t.seq
	t.seq++
	blob, err := json.Marshal(s)
	if err != nil {
		// Attrs are built by this repo's own call sites from plain
		// numbers and strings; a marshal failure is a programmer error.
		// Drop the span rather than corrupt the JSONL stream.
		return
	}
	blob = append(blob, '\n')
	_, _ = t.w.Write(blob)
}
