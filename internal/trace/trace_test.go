package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// emitSample writes a fixed span sequence, standing in for one pipeline run.
func emitSample(t *Writer) {
	t.Emit("req-1", "features", t.Now(), map[string]any{"count": 7})
	t.Emit("req-1", "predict-u", t.Now(), map[string]any{"u": 100})
	t.Emit("req-1", "execute-bin", t.Now(), map[string]any{
		"bin": 3, "kernel": "subvector8", "cycles": 1234.0, "activeLaneRatio": 0.75,
	})
}

func TestDeterministicByteIdentical(t *testing.T) {
	var a, b bytes.Buffer
	emitSample(NewDeterministicWriter(&a))
	emitSample(NewDeterministicWriter(&b))
	if a.Len() == 0 {
		t.Fatal("no output")
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("deterministic traces differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	if strings.Contains(a.String(), "startUnixNs") || strings.Contains(a.String(), "wallNs") {
		t.Fatalf("deterministic trace leaked clock fields: %s", a.String())
	}
}

func TestJSONLStructure(t *testing.T) {
	var buf bytes.Buffer
	emitSample(NewDeterministicWriter(&buf))
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %d", len(lines))
	}
	names := []string{"features", "predict-u", "execute-bin"}
	for i, line := range lines {
		var s Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("line %d not JSON: %v", i, err)
		}
		if s.Seq != int64(i) {
			t.Errorf("line %d: seq = %d, want %d", i, s.Seq, i)
		}
		if s.Name != names[i] {
			t.Errorf("line %d: name = %q, want %q", i, s.Name, names[i])
		}
		if s.Trace != "req-1" {
			t.Errorf("line %d: trace = %q", i, s.Trace)
		}
	}
}

func TestWallClockWriterAddsTiming(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if w.Deterministic() {
		t.Fatal("wall-clock writer reports deterministic")
	}
	start := w.Now()
	if start.IsZero() {
		t.Fatal("wall-clock Now returned zero time")
	}
	time.Sleep(time.Millisecond)
	w.Emit("", "execute-bin", start, nil)
	var s Span
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatal(err)
	}
	if s.StartUnixNs == 0 || s.WallNs <= 0 {
		t.Fatalf("wall-clock span missing timing: %+v", s)
	}
}

func TestNilWriterIsNoop(t *testing.T) {
	var w *Writer
	if !w.Deterministic() {
		t.Error("nil writer should report deterministic")
	}
	if !w.Now().IsZero() {
		t.Error("nil writer Now should be zero")
	}
	w.Emit("x", "y", time.Now(), nil) // must not panic
}

func TestConcurrentEmitsKeepLineAtomicity(t *testing.T) {
	var buf bytes.Buffer
	w := NewDeterministicWriter(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				w.Emit("c", "execute-bin", time.Time{}, map[string]any{"j": j})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 400 {
		t.Fatalf("want 400 lines, got %d", len(lines))
	}
	seen := make(map[int64]bool)
	for _, line := range lines {
		var s Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("corrupt line %q: %v", line, err)
		}
		if seen[s.Seq] {
			t.Fatalf("duplicate seq %d", s.Seq)
		}
		seen[s.Seq] = true
	}
}
