#!/bin/sh
# Full verification gate: formatting, vet, build, race-enabled tests, and a
# short fuzz smoke on the Matrix Market parser. Run via `make check` or
# directly. Fails on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== fuzz smoke (FuzzReadMTX, 10s)"
go test -run='^$' -fuzz=FuzzReadMTX -fuzztime=10s ./internal/mmio

echo "== check OK"
