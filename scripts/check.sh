#!/bin/sh
# Full verification gate: formatting, vet, build, race-enabled tests, a
# 1-iteration benchmark smoke, and short fuzz smokes on the Matrix Market
# parser and the spmvd request decoder. Run via `make check` or directly.
# Fails on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== bench smoke (1 iteration)"
go test -run='^$' -bench=. -benchtime=1x ./...

echo "== fuzz smoke (FuzzReadMTX, 10s)"
go test -run='^$' -fuzz=FuzzReadMTX -fuzztime=10s ./internal/mmio

echo "== fuzz smoke (FuzzHTTPSpMV, 10s)"
go test -run='^$' -fuzz=FuzzHTTPSpMV -fuzztime=10s ./internal/server

echo "== check OK"
