#!/bin/sh
# Full verification gate: formatting, vet, build, race-enabled tests, a
# 1-iteration benchmark smoke, short fuzz smokes on the Matrix Market
# parser and the spmvd request decoders (SpMV and solver sessions), plus
# staticcheck and govulncheck.
# Run via `make check` or directly. Fails on the first broken step.
#
# staticcheck and govulncheck are skipped with a notice when the binaries
# are not installed — except in CI (CI=true), where missing linters are a
# hard failure so the gate cannot silently weaken.
set -eu

cd "$(dirname "$0")/.."

# require_or_skip TOOL: succeed if TOOL is on PATH; otherwise skip locally,
# fail in CI.
require_or_skip() {
    if command -v "$1" >/dev/null 2>&1; then
        return 0
    fi
    if [ "${CI:-}" = "true" ]; then
        echo "$1 not installed but CI=true; install it in the workflow" >&2
        exit 1
    fi
    echo "   ($1 not installed; skipping locally — CI always runs it)"
    return 1
}

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race"
go test -race ./...

echo "== bench smoke (1 iteration)"
go test -run='^$' -bench=. -benchtime=1x ./...

echo "== fuzz smoke (FuzzReadMTX, 10s)"
go test -run='^$' -fuzz=FuzzReadMTX -fuzztime=10s ./internal/mmio

echo "== fuzz smoke (FuzzHTTPSpMV, 10s)"
go test -run='^$' -fuzz=FuzzHTTPSpMV -fuzztime=10s ./internal/server

echo "== fuzz smoke (FuzzHTTPSolve, 10s)"
go test -run='^$' -fuzz=FuzzHTTPSolve -fuzztime=10s ./internal/server

echo "== fuzz smoke (FuzzPlanDecode, 10s)"
go test -run='^$' -fuzz=FuzzPlanDecode -fuzztime=10s ./internal/plan

echo "== staticcheck"
if require_or_skip staticcheck; then
    staticcheck ./...
fi

echo "== govulncheck"
if require_or_skip govulncheck; then
    govulncheck ./...
fi

echo "== check OK"
