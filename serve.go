package spmvtune

import (
	"spmvtune/internal/core"
	"spmvtune/internal/plan"
	"spmvtune/internal/plancache"
	"spmvtune/internal/server"
)

// Serving surface ---------------------------------------------------------
// The plan/cache/server layer behind cmd/spmvd, re-exported so library
// users embedding the daemon never import internal packages. See DESIGN.md
// §7 for the architecture.

type (
	// TuningPlan is the reified tuning decision for one matrix structure:
	// features, chosen U, binning layout and per-bin kernels, ready to be
	// cached, serialized, and executed via Framework.ExecutePlan.
	TuningPlan = plan.TuningPlan
	// BinAssignment is one bin's row population and chosen kernel.
	BinAssignment = plan.BinAssignment

	// PlanCacheOptions sizes the sharded plan cache (capacity, shards,
	// TTL, optional persistence directory).
	PlanCacheOptions = plancache.Options
	// PlanCacheStats is a point-in-time snapshot of cache counters.
	PlanCacheStats = plancache.Stats
	// PlanCache is a sharded LRU of tuning plans keyed by matrix
	// fingerprint, with singleflight deduplication of concurrent tuning.
	PlanCache = plancache.Cache

	// ServerConfig configures the SpMV serving daemon (framework, worker
	// pool, deadlines, body/batch limits, plan cache).
	ServerConfig = server.Config
	// Server is the HTTP handler implementing the spmvd JSON API.
	Server = server.Server
)

// PlanFingerprint returns the deterministic structural fingerprint of a
// matrix — the plan-cache key. It covers the sparsity pattern only, so
// matrices differing just in values share tuning plans.
func PlanFingerprint(a *Matrix) string { return plan.Fingerprint(a) }

// DecodePlan parses and validates a JSON TuningPlan produced by
// TuningPlan.Encode or printed by `spmvtune predict -plan`.
func DecodePlan(data []byte) (*TuningPlan, error) { return plan.Decode(data) }

// NewPlanCache builds a plan cache; zero options get sensible defaults.
func NewPlanCache(opts PlanCacheOptions) *PlanCache { return plancache.New(opts) }

// NewServer builds the serving handler around a framework. Mount it on any
// http.Server; cmd/spmvd is the reference embedding.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// ModelVersion fingerprints a trained model; plans record it so a cache
// can be invalidated when the model changes.
func ModelVersion(m *Model) string { return core.ModelVersion(m) }
