package spmvtune

import (
	"context"

	"spmvtune/internal/cpu"
	"spmvtune/internal/reorder"
	"spmvtune/internal/solvers"
)

// Iterative solvers with injectable SpMV backends — the applications the
// paper's introduction motivates SpMV with. Use Framework.PrepareCPU (or
// DefaultSpMV) to obtain a backend.

type (
	// SpMV is a matrix-vector product backend: it computes u = A*v.
	SpMV = solvers.SpMV
	// SolveResult reports a solver's outcome.
	SolveResult = solvers.Result
)

// DefaultSpMV returns the sequential reference backend.
func DefaultSpMV(a *Matrix) SpMV { return solvers.Default(a) }

// SolveCG solves A x = b for symmetric positive-definite A by conjugate
// gradients. x holds the initial guess and receives the solution.
func SolveCG(mul SpMV, b, x []float64, tol float64, maxIter int) (SolveResult, error) {
	return solvers.CG(mul, b, x, tol, maxIter)
}

// SolveBiCGSTAB solves A x = b for general square A.
func SolveBiCGSTAB(mul SpMV, b, x []float64, tol float64, maxIter int) (SolveResult, error) {
	return solvers.BiCGSTAB(mul, b, x, tol, maxIter)
}

// SolveGMRES solves A x = b for general square A with restarted GMRES(m);
// restart <= 0 selects 30.
func SolveGMRES(mul SpMV, b, x []float64, tol float64, restart, maxIter int) (SolveResult, error) {
	return solvers.GMRES(mul, b, x, tol, restart, maxIter)
}

// SolveJacobi solves A x = b for strictly diagonally dominant A.
func SolveJacobi(a *Matrix, mul SpMV, b, x []float64, tol float64, maxIter int) (SolveResult, error) {
	return solvers.Jacobi(a, mul, b, x, tol, maxIter)
}

// DominantEigen runs power iteration for the dominant eigenpair; x is the
// starting vector and receives the eigenvector.
func DominantEigen(mul SpMV, x []float64, tol float64, maxIter int) (float64, SolveResult, error) {
	return solvers.PowerIteration(mul, x, tol, maxIter)
}

// Context-aware solver variants: each checks cancellation once per
// iteration and returns early with an error matching ErrCanceled, leaving
// the best iterate so far in x.

// SolveCGCtx is SolveCG under a context.
func SolveCGCtx(ctx context.Context, mul SpMV, b, x []float64, tol float64, maxIter int) (SolveResult, error) {
	return solvers.CGCtx(ctx, mul, b, x, tol, maxIter)
}

// SolveBiCGSTABCtx is SolveBiCGSTAB under a context.
func SolveBiCGSTABCtx(ctx context.Context, mul SpMV, b, x []float64, tol float64, maxIter int) (SolveResult, error) {
	return solvers.BiCGSTABCtx(ctx, mul, b, x, tol, maxIter)
}

// SolveGMRESCtx is SolveGMRES under a context.
func SolveGMRESCtx(ctx context.Context, mul SpMV, b, x []float64, tol float64, restart, maxIter int) (SolveResult, error) {
	return solvers.GMRESCtx(ctx, mul, b, x, tol, restart, maxIter)
}

// SolveJacobiCtx is SolveJacobi under a context.
func SolveJacobiCtx(ctx context.Context, a *Matrix, mul SpMV, b, x []float64, tol float64, maxIter int) (SolveResult, error) {
	return solvers.JacobiCtx(ctx, a, mul, b, x, tol, maxIter)
}

// DominantEigenCtx is DominantEigen under a context.
func DominantEigenCtx(ctx context.Context, mul SpMV, x []float64, tol float64, maxIter int) (float64, SolveResult, error) {
	return solvers.PowerIterationCtx(ctx, mul, x, tol, maxIter)
}

// SpMM computes the sparse-times-dense-block product U = A*X for k dense
// right-hand sides stored row-major (X[c*k+j] = column j of row c),
// amortizing every matrix-entry load over all k vectors.
func SpMM(a *Matrix, x []float64, k int, u []float64, workers int) error {
	return cpu.MulMat(a, x, k, u, workers)
}

// Reordering ------------------------------------------------------------

// RCM returns the reverse Cuthill-McKee permutation of the matrix
// (perm[new] = old). The framework's coarse binning assumes adjacent rows
// are similar; RCM restores that locality for arbitrarily permuted inputs.
func RCM(a *Matrix) []int { return reorder.RCM(a) }

// PermuteMatrix applies a symmetric permutation (rows and, for square
// matrices, columns): B[i,j] = A[perm[i], perm[j]].
func PermuteMatrix(a *Matrix, perm []int) *Matrix { return reorder.Permute(a, perm) }

// PermuteVec gathers x into permuted numbering; UnpermuteVec undoes it.
func PermuteVec(x []float64, perm []int) []float64   { return reorder.PermuteVec(x, perm) }
func UnpermuteVec(x []float64, perm []int) []float64 { return reorder.UnpermuteVec(x, perm) }
