package spmvtune_test

import (
	"math"
	"testing"

	"spmvtune"
)

func spdSystem(n int) (*spmvtune.Matrix, []float64) {
	coo := &spmvtune.COO{Rows: n, Cols: n}
	for i := 0; i < n; i++ {
		coo.Add(i, i, 5)
		if i+1 < n {
			coo.Add(i, i+1, -1)
			coo.Add(i+1, i, -1)
		}
	}
	a, err := coo.ToCSR()
	if err != nil {
		panic(err)
	}
	b := make([]float64, n)
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	a.MulVec(ones, b)
	return a, b
}

func TestPublicSolvers(t *testing.T) {
	a, b := spdSystem(2000)
	mul := spmvtune.DefaultSpMV(a)

	x := make([]float64, len(b))
	res, err := spmvtune.SolveCG(mul, b, x, 1e-10, 0)
	if err != nil || !res.Converged {
		t.Fatalf("CG: %v %+v", err, res)
	}
	x2 := make([]float64, len(b))
	if _, err := spmvtune.SolveBiCGSTAB(mul, b, x2, 1e-10, 0); err != nil {
		t.Fatalf("BiCGSTAB: %v", err)
	}
	xg := make([]float64, len(b))
	if _, err := spmvtune.SolveGMRES(mul, b, xg, 1e-10, 0, 0); err != nil {
		t.Fatalf("GMRES: %v", err)
	}
	for i := range xg {
		if math.Abs(xg[i]-1) > 1e-6 {
			t.Fatalf("GMRES solution wrong at %d", i)
		}
	}

	// SpMM agrees with repeated SpMV.
	const k = 3
	xm := make([]float64, a.Cols*k)
	for i := range xm {
		xm[i] = float64(i % 5)
	}
	um := make([]float64, a.Rows*k)
	if err := spmvtune.SpMM(a, xm, k, um, 2); err != nil {
		t.Fatal(err)
	}
	vj := make([]float64, a.Cols)
	uj := make([]float64, a.Rows)
	for c := 0; c < a.Cols; c++ {
		vj[c] = xm[c*k] // column 0
	}
	spmvtune.Reference(a, vj, uj)
	for r := 0; r < a.Rows; r++ {
		if math.Abs(um[r*k]-uj[r]) > 1e-9 {
			t.Fatalf("SpMM column 0 differs at row %d", r)
		}
	}
	x3 := make([]float64, len(b))
	if _, err := spmvtune.SolveJacobi(a, mul, b, x3, 1e-10, 100000); err != nil {
		t.Fatalf("Jacobi: %v", err)
	}
	for i := range x {
		if math.Abs(x[i]-1) > 1e-6 || math.Abs(x2[i]-1) > 1e-6 || math.Abs(x3[i]-1) > 1e-6 {
			t.Fatalf("solvers disagree with exact solution at %d: %v %v %v", i, x[i], x2[i], x3[i])
		}
	}

	// Power iteration on a diagonal matrix.
	coo := &spmvtune.COO{Rows: 50, Cols: 50}
	for i := 0; i < 50; i++ {
		coo.Add(i, i, float64(i+1))
	}
	d, _ := coo.ToCSR()
	start := make([]float64, 50)
	for i := range start {
		start[i] = 1
	}
	lambda, _, err := spmvtune.DominantEigen(spmvtune.DefaultSpMV(d), start, 1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lambda-50) > 1e-6 {
		t.Errorf("dominant eigenvalue %v, want 50", lambda)
	}
}

func TestPublicSolverWithPreparedBackend(t *testing.T) {
	cfg := spmvtune.DefaultConfig()
	model, _, err := spmvtune.TrainPipeline(cfg, apiTrainOptions())
	if err != nil {
		t.Fatal(err)
	}
	fw := spmvtune.NewFramework(cfg, model)
	a, b := spdSystem(1500)
	_, mul := fw.PrepareCPU(a, 2)
	x := make([]float64, len(b))
	res, err := spmvtune.SolveCG(mul, b, x, 1e-10, 0)
	if err != nil || !res.Converged {
		t.Fatalf("CG with prepared backend: %v %+v", err, res)
	}
	for i := range x {
		if math.Abs(x[i]-1) > 1e-6 {
			t.Fatalf("wrong solution at %d", i)
		}
	}
}

func TestPublicReorder(t *testing.T) {
	a := spmvtune.GenBanded(500, 5, 3)
	// Shuffle, then RCM back.
	shufflePerm := make([]int, a.Rows)
	for i := range shufflePerm {
		shufflePerm[i] = (i*7919 + 13) % a.Rows // bijection for prime stride
	}
	seen := map[int]bool{}
	for _, p := range shufflePerm {
		if seen[p] {
			t.Skip("stride not a bijection for this size")
		}
		seen[p] = true
	}
	shuffled := spmvtune.PermuteMatrix(a, shufflePerm)
	perm := spmvtune.RCM(shuffled)
	rcm := spmvtune.PermuteMatrix(shuffled, perm)
	// Operator preserved end to end.
	x := make([]float64, a.Cols)
	for i := range x {
		x[i] = float64(i % 11)
	}
	y := make([]float64, a.Rows)
	a.MulVec(x, y)
	xs := spmvtune.PermuteVec(spmvtune.PermuteVec(x, shufflePerm), perm)
	ys := make([]float64, a.Rows)
	rcm.MulVec(xs, ys)
	back := spmvtune.UnpermuteVec(spmvtune.UnpermuteVec(ys, perm), shufflePerm)
	if !spmvtune.VecApproxEqual(y, back, 1e-12) {
		t.Error("reordered operator differs after unpermutation")
	}
}
