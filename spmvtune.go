// Package spmvtune is an input-aware auto-tuning framework for CSR-based
// sparse matrix-vector multiplication (SpMV), reproducing Hou, Feng & Che,
// "Auto-Tuning Strategies for Parallelizing Sparse Matrix-Vector (SpMV)
// Multiplication on Multi- and Many-Core Processors" (2017).
//
// The framework groups matrix rows into workload bins ("binning") at a
// learned granularity U and selects, per bin, the best of nine SpMV kernels
// (serial / subvector-X / vector thread organizations) using a two-stage
// C5.0-style decision-tree model trained offline on a matrix corpus.
// Kernels execute on a deterministic simulator of a GCN-like HSA device
// (the paper's AMD APU) and natively on the host CPU.
//
// Quick start:
//
//	model, _, err := spmvtune.TrainPipeline(spmvtune.DefaultConfig(), spmvtune.DefaultTrainOptions())
//	fw := spmvtune.NewFramework(spmvtune.DefaultConfig(), model)
//	decision, stats, err := fw.RunSim(a, v, u) // u = A*v, auto-tuned
package spmvtune

import (
	"fmt"

	"spmvtune/internal/binning"
	"spmvtune/internal/c50"
	"spmvtune/internal/core"
	"spmvtune/internal/csradaptive"
	"spmvtune/internal/errdefs"
	"spmvtune/internal/features"
	"spmvtune/internal/hsa"
	"spmvtune/internal/kernels"
	"spmvtune/internal/matgen"
	"spmvtune/internal/mmio"
	"spmvtune/internal/sparse"
)

// Core sparse types.
type (
	// Matrix is a sparse matrix in compressed sparse row format.
	Matrix = sparse.CSR
	// Entry is a (column, value) pair used to assemble matrices row-wise.
	Entry = sparse.Entry
	// COO is a coordinate-format matrix for incremental assembly.
	COO = sparse.COO
	// Features is the Table I feature vector of a matrix.
	Features = features.F
)

// Framework types.
type (
	// Config fixes the device model, bin cap and granularity candidates.
	Config = core.Config
	// Model is the trained two-stage predictor.
	Model = core.Model
	// Framework couples a model with a device for runtime auto-tuning.
	Framework = core.Framework
	// Decision is a chosen (U, per-bin kernel) strategy.
	Decision = core.Decision
	// DeviceConfig describes the simulated HSA device.
	DeviceConfig = hsa.Config
	// DeviceStats aggregates simulated device activity and time.
	DeviceStats = hsa.Stats
	// Binning is a grouping of matrix rows into workload bins.
	Binning = binning.Binning
	// TreeOptions controls decision-tree induction.
	TreeOptions = c50.Options
)

// Failure semantics ------------------------------------------------------

// Typed error sentinels for the resilient execution layer; test with
// errors.Is. Every error from the guarded paths matches exactly one class
// (budget faults additionally match ErrKernelFault).
var (
	// ErrInvalidMatrix marks malformed matrix input (bad file, bad shape).
	ErrInvalidMatrix = errdefs.ErrInvalidMatrix
	// ErrKernelFault marks a simulated-device kernel abort.
	ErrKernelFault = errdefs.ErrKernelFault
	// ErrBudgetExceeded marks a kernel that exhausted its cycle budget.
	ErrBudgetExceeded = errdefs.ErrBudgetExceeded
	// ErrCanceled marks an execution stopped by context cancellation or
	// deadline; it also matches the underlying context sentinel.
	ErrCanceled = errdefs.ErrCanceled
)

// Guarded-execution types (see Framework.RunGuarded / RunGuardedOpts).
type (
	// GuardOptions tunes retries, backoff, verification tolerance and
	// fault injection for a guarded run.
	GuardOptions = core.GuardOptions
	// ExecReport records every fallback and retry decision of one
	// guarded run.
	ExecReport = core.ExecReport
	// BinReport records how one bin was finally served.
	BinReport = core.BinReport
	// FaultPlan is a deterministic fault-injection plan for the
	// simulated device.
	FaultPlan = hsa.FaultPlan
	// Fault describes one injected fault (class, transience, budget).
	Fault = hsa.Fault
	// FaultClass enumerates the injectable fault classes.
	FaultClass = hsa.FaultClass
)

// Injectable fault classes.
const (
	FaultLDSOverflow       = hsa.FaultLDSOverflow
	FaultBarrierDivergence = hsa.FaultBarrierDivergence
	FaultCycleBudget       = hsa.FaultCycleBudget
	FaultNaNPoison         = hsa.FaultNaNPoison
)

// DefaultGuardOptions returns the guarded executor's defaults (two
// attempts per chain link, doubling backoff, 1e-9 verification tolerance).
func DefaultGuardOptions() GuardOptions { return core.DefaultGuardOptions() }

// NewFaultPlan returns an empty fault-injection plan.
func NewFaultPlan() *FaultPlan { return hsa.NewFaultPlan() }

// DefaultConfig returns the paper's setup: a Kaveri-like 8-CU device, up
// to 100 bins, and granularities 10, 20, 50, ..., 10^6.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewFramework builds a runtime framework from a config and trained model.
func NewFramework(cfg Config, m *Model) *Framework { return core.NewFramework(cfg, m) }

// Extract computes the Table I features of a matrix.
func Extract(a *Matrix) Features { return features.Extract(a) }

// FeatureNames returns the Table I attribute names in vector order.
func FeatureNames() []string { return features.Names() }

// KernelNames returns the nine kernel names in pool (class-label) order.
func KernelNames() []string {
	pool := kernels.Pool()
	names := make([]string, len(pool))
	for i, info := range pool {
		names[i] = info.Name
	}
	return names
}

// Granularities returns the paper's candidate U series.
func Granularities() []int { return binning.Granularities() }

// CoarseBin groups rows with the paper's coarse virtual-row scheme.
func CoarseBin(a *Matrix, u, maxBins int) *Binning { return binning.Coarse(a, u, maxBins) }

// SingleBin places all rows into one bin (the Figure 9 strategy).
func SingleBin(a *Matrix) *Binning { return binning.Single(a) }

// NewMatrixFromRows assembles a CSR matrix from per-row (column, value)
// entries, used as given (not sorted or deduplicated).
func NewMatrixFromRows(rows, cols int, entries [][]Entry) (*Matrix, error) {
	return sparse.NewCSRFromRows(rows, cols, entries)
}

// ReadMatrixMarket loads a Matrix Market file as CSR.
func ReadMatrixMarket(path string) (*Matrix, error) { return mmio.ReadFile(path) }

// WriteMatrixMarket stores the matrix in Matrix Market coordinate format.
func WriteMatrixMarket(path string, a *Matrix, comments ...string) error {
	return mmio.WriteFile(path, a, comments...)
}

// SaveModel / LoadModel persist trained models as JSON.
func SaveModel(path string, m *Model) error           { return core.SaveModel(path, m) }
func LoadModel(path string) (*Model, error)           { return core.LoadModel(path) }
func DefaultTreeOptions() TreeOptions                 { return c50.DefaultOptions() }
func DeviceDefault() DeviceConfig                     { return hsa.DefaultConfig() }
func Reference(a *Matrix, v, u []float64)             { a.MulVec(v, u) }
func VecApproxEqual(x, y []float64, tol float64) bool { return sparse.VecApproxEqual(x, y, tol) }

// TrainOptions configures the offline training pipeline.
type TrainOptions struct {
	CorpusSize    int   // number of synthetic corpus matrices
	MinRows       int   // smallest corpus matrix
	MaxRows       int   // largest corpus matrix
	Seed          int64 // corpus seed
	TrainFraction float64
	Tree          TreeOptions
	Progress      func(done, total int) // optional progress callback
}

// DefaultTrainOptions sizes the pipeline for a single machine (the paper
// uses ~2000 UF matrices; the synthetic default favors feature coverage).
func DefaultTrainOptions() TrainOptions {
	o := matgen.DefaultCorpusOptions()
	return TrainOptions{
		CorpusSize:    o.N,
		MinRows:       o.MinRows,
		MaxRows:       o.MaxRows,
		Seed:          o.Seed,
		TrainFraction: 0.75,
		Tree:          c50.DefaultOptions(),
	}
}

// TrainReport summarizes an offline training run.
type TrainReport struct {
	Corpus      int
	Stage1Train int
	Stage2Train int
	Stage1Error float64 // held-out error rate of the U predictor
	Stage2Error float64 // held-out error rate of the kernel predictor
}

// TrainPipeline runs the full offline path of Figure 3: generate a corpus,
// label every matrix by exhaustive search on the simulated device, train
// the two-stage model on a train split, and evaluate on the held-out rest.
func TrainPipeline(cfg Config, opts TrainOptions) (*Model, TrainReport, error) {
	if opts.CorpusSize <= 0 {
		return nil, TrainReport{}, fmt.Errorf("spmvtune: corpus size must be positive")
	}
	if opts.TrainFraction <= 0 || opts.TrainFraction > 1 {
		opts.TrainFraction = 0.75
	}
	corpus := matgen.Corpus(matgen.CorpusOptions{
		N: opts.CorpusSize, MinRows: opts.MinRows, MaxRows: opts.MaxRows, Seed: opts.Seed,
	})
	td := core.NewTrainingData(cfg)
	for i, cm := range corpus {
		td.AddMatrix(cfg, cm.A)
		if opts.Progress != nil {
			opts.Progress(i+1, len(corpus))
		}
	}
	td.Finalize()
	tr1, te1 := td.Stage1.Split(opts.TrainFraction, opts.Seed)
	tr2, te2 := td.Stage2.Split(opts.TrainFraction, opts.Seed)
	m := &Model{Us: cfg.Us, MaxBins: cfg.MaxBins,
		Stage1: c50.Train(tr1, opts.Tree),
		Stage2: c50.Train(tr2, opts.Tree)}
	rep := TrainReport{Corpus: len(corpus), Stage1Train: tr1.Len(), Stage2Train: tr2.Len()}
	rep.Stage1Error, _ = c50.Evaluate(m.Stage1, te1)
	rep.Stage2Error, _ = c50.Evaluate(m.Stage2, te2)
	return m, rep, nil
}

// Baselines ------------------------------------------------------------

// RunSingleKernelSim executes the whole matrix with one kernel (by pool
// name: "serial", "subvector2"..."subvector128", "vector") on the
// simulated device.
func RunSingleKernelSim(dev DeviceConfig, a *Matrix, v, u []float64, kernel string) (DeviceStats, error) {
	info, ok := kernels.ByName(kernel)
	if !ok {
		return DeviceStats{}, fmt.Errorf("spmvtune: unknown kernel %q", kernel)
	}
	return core.SimulateSingleKernel(dev, a, v, u, info.ID)
}

// RunCSRAdaptiveSim executes the CSR-Adaptive baseline on the simulated
// device. blockNNZ <= 0 uses the default row-block workload limit.
func RunCSRAdaptiveSim(dev DeviceConfig, a *Matrix, v, u []float64, blockNNZ int) DeviceStats {
	return csradaptive.SimulateSpMV(dev, a, v, u, blockNNZ)
}

// Generators ------------------------------------------------------------
// Seeded synthetic matrix generators spanning the application domains of
// the paper's Table II; see DESIGN.md for the substitution rationale.

// GenBanded makes a square banded (FEM-stencil) matrix.
func GenBanded(rows, band int, seed int64) *Matrix { return matgen.Banded(rows, band, seed) }

// GenRoadNetwork makes a road-graph-like matrix (degree 1-4, local links).
func GenRoadNetwork(rows int, seed int64) *Matrix { return matgen.RoadNetwork(rows, seed) }

// GenPowerLaw makes a scale-free-like matrix with heavy-tailed row lengths.
func GenPowerLaw(rows, avg int, alpha float64, maxLen int, seed int64) *Matrix {
	return matgen.PowerLaw(rows, avg, alpha, maxLen, seed)
}

// GenBlockFEM makes a block-structured matrix with long rows.
func GenBlockFEM(rows, width, jitter int, seed int64) *Matrix {
	return matgen.BlockFEM(rows, width, jitter, seed)
}

// GenBipartite makes a rectangular combinatorial matrix with fixed-length rows.
func GenBipartite(rows, cols, rowLen int, seed int64) *Matrix {
	return matgen.Bipartite(rows, cols, rowLen, seed)
}

// GenMixed makes a matrix whose row length cycles across regions.
func GenMixed(rows, cols, regionRows int, lens []int, seed int64) *Matrix {
	return matgen.Mixed(rows, cols, regionRows, lens, seed)
}

// GenRMAT makes a recursive-matrix (Kronecker) graph of 2^scale vertices
// with skewed, clustered degrees (web/social-graph shape).
func GenRMAT(scale, avgDeg int, a, b, c float64, seed int64) *Matrix {
	return matgen.RMAT(scale, avgDeg, a, b, c, seed)
}
